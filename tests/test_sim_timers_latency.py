"""Tests for timers, random sub-streams and latency models."""

import pytest

from repro.sim import (
    ConstantLatency,
    LogNormalLatency,
    NormalLatency,
    PeriodicTimer,
    RandomSource,
    ShiftedLatency,
    Timer,
)


class TestTimer:
    def test_fires_after_delay(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.run()
        assert fired == [2.0]

    def test_restart_replaces_previous_deadline(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        timer.start(5.0)
        sim.run()
        assert fired == [5.0]

    def test_stop_prevents_firing(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        timer.stop()
        sim.run()
        assert fired == []

    def test_armed_and_remaining(self, sim):
        timer = Timer(sim, lambda: None)
        assert not timer.armed
        timer.start(3.0)
        assert timer.armed
        assert timer.remaining == pytest.approx(3.0)
        assert timer.expiry == pytest.approx(3.0)

    def test_not_armed_after_firing(self, sim):
        timer = Timer(sim, lambda: None)
        timer.start(1.0)
        sim.run()
        assert not timer.armed
        assert timer.expiry is None

    def test_can_rearm_from_callback(self, sim):
        fired = []
        timer = Timer(sim, lambda: None)

        def callback():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.start(1.0)

        timer._callback = callback
        timer.start(1.0)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]


class TestPeriodicTimer:
    def test_ticks_at_interval(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        timer.start()
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_initial_delay_override(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        timer.start(initial_delay=0.25)
        sim.run(until=2.5)
        assert ticks == [0.25, 1.25, 2.25]

    def test_stop_ends_series(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        timer.start()
        sim.schedule(2.5, timer.stop)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]
        assert not timer.running

    def test_stop_from_callback(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: timer.stop())
        timer.start()
        sim.run(until=5.0)
        assert timer.ticks == 1

    def test_double_start_is_noop(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        timer.start()
        timer.start()
        sim.run(until=2.5)
        assert ticks == [1.0, 2.0]

    def test_invalid_interval_rejected(self, sim):
        with pytest.raises(ValueError):
            PeriodicTimer(sim, 0.0, lambda: None)


class TestRandomSource:
    def test_same_seed_same_stream(self):
        a = RandomSource(3)
        b = RandomSource(3)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_substreams_are_deterministic(self):
        a = RandomSource(3).substream("link")
        b = RandomSource(3).substream("link")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_substream_identity_is_cached(self):
        root = RandomSource(3)
        assert root.substream("x") is root.substream("x")

    def test_named_substreams_are_independent(self):
        root = RandomSource(3)
        assert root.substream("a").random() != root.substream("b").random()

    def test_chance_extremes(self):
        rng = RandomSource(1)
        assert rng.chance(0.0) is False
        assert rng.chance(1.0) is True
        assert rng.chance(-1.0) is False
        assert rng.chance(2.0) is True

    def test_chance_statistics(self):
        rng = RandomSource(1)
        hits = sum(1 for _ in range(20_000) if rng.chance(0.3))
        assert 0.27 < hits / 20_000 < 0.33

    def test_ephemeral_port_range(self):
        rng = RandomSource(1)
        for _ in range(100):
            assert 32768 <= rng.ephemeral_port() <= 60999

    def test_randint_bounds(self):
        rng = RandomSource(1)
        for _ in range(100):
            assert 1 <= rng.randint(1, 6) <= 6

    def test_sample_distinct(self):
        rng = RandomSource(1)
        sampled = rng.sample(list(range(10)), 4)
        assert len(set(sampled)) == 4


class TestLatencyModels:
    def test_constant(self):
        model = ConstantLatency(0.001)
        assert model.sample(RandomSource(1)) == 0.001
        assert model.mean() == 0.001

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)

    def test_normal_floor(self):
        model = NormalLatency(mean=1e-6, stddev=1e-3, floor=0.0)
        rng = RandomSource(1)
        assert all(model.sample(rng) >= 0.0 for _ in range(200))

    def test_lognormal_mean_calibration(self):
        model = LogNormalLatency(20e-6, sigma=0.5)
        rng = RandomSource(1)
        samples = [model.sample(rng) for _ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(20e-6, rel=0.05)

    def test_lognormal_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LogNormalLatency(0.0)
        with pytest.raises(ValueError):
            LogNormalLatency(1e-6, sigma=0.0)

    def test_shifted(self):
        base = ConstantLatency(1e-6)
        model = ShiftedLatency(base, 5e-6)
        assert model.sample(RandomSource(1)) == pytest.approx(6e-6)
        assert model.mean() == pytest.approx(6e-6)
        assert model.base is base
        assert model.shift == pytest.approx(5e-6)

    def test_shifted_rejects_negative(self):
        with pytest.raises(ValueError):
            ShiftedLatency(ConstantLatency(0.0), -1e-6)
