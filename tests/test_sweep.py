"""Unit tests for the sweep subsystem: grids, cache, cells, engine, report."""

import json

import pytest

from repro.mptcp.scheduler import SCHEDULER_REGISTRY
from repro.sweep import (
    CONTROLLERS,
    EXPERIMENTS,
    SCENARIOS,
    CampaignGrid,
    CellCache,
    CellSpec,
    format_campaign_report,
    run_campaign,
    run_cell,
)


def tiny_grid(**overrides) -> CampaignGrid:
    defaults = dict(
        name="tiny",
        campaign_seed=11,
        experiments=["bulk_transfer"],
        scenarios=["dual_homed"],
        schedulers=["lowest_rtt"],
        controllers=["passive"],
        seeds=1,
        params={"transfer_bytes": 40_000, "horizon": 10.0},
    )
    defaults.update(overrides)
    return CampaignGrid(**defaults)


class TestGrid:
    def test_expansion_order_and_count(self):
        grid = tiny_grid(
            schedulers=["lowest_rtt", "round_robin"],
            controllers=["passive", "fullmesh"],
            seeds=2,
        )
        cells = grid.expand()
        assert len(cells) == grid.cell_count == 8
        # Nesting order is scheduler > controller > seed (seed innermost).
        assert [cell.key for cell in cells] == [
            "bulk_transfer/dual_homed/lowest_rtt/passive/seed0",
            "bulk_transfer/dual_homed/lowest_rtt/passive/seed1",
            "bulk_transfer/dual_homed/lowest_rtt/fullmesh/seed0",
            "bulk_transfer/dual_homed/lowest_rtt/fullmesh/seed1",
            "bulk_transfer/dual_homed/round_robin/passive/seed0",
            "bulk_transfer/dual_homed/round_robin/passive/seed1",
            "bulk_transfer/dual_homed/round_robin/fullmesh/seed0",
            "bulk_transfer/dual_homed/round_robin/fullmesh/seed1",
        ]
        # Expansion is deterministic.
        assert grid.expand() == cells

    def test_axes_must_be_nonempty_and_unique(self):
        with pytest.raises(ValueError):
            tiny_grid(schedulers=[])
        with pytest.raises(ValueError):
            tiny_grid(controllers=["passive", "passive"])
        with pytest.raises(ValueError):
            tiny_grid(seeds=0)

    def test_validate_rejects_unknown_axis_values(self):
        with pytest.raises(ValueError, match="scenario"):
            tiny_grid(scenarios=["atlantis"]).validate()
        with pytest.raises(ValueError, match="scheduler"):
            tiny_grid(schedulers=["fastest"]).validate()
        with pytest.raises(ValueError, match="controller"):
            tiny_grid(controllers=["hal9000"]).validate()
        with pytest.raises(ValueError, match="experiment"):
            tiny_grid(experiments=["teleport"]).validate()

    def test_cell_spec_roundtrip(self):
        spec = tiny_grid().expand()[0]
        assert CellSpec.from_dict(spec.as_dict()) == spec
        assert CellSpec.from_dict(json.loads(json.dumps(spec.as_dict()))) == spec

    def test_cell_seed_is_stable_and_coordinate_dependent(self):
        cells = tiny_grid(schedulers=["lowest_rtt", "round_robin"]).expand()
        assert cells[0].cell_seed(1) == cells[0].cell_seed(1)
        assert cells[0].cell_seed(1) != cells[1].cell_seed(1)
        assert cells[0].cell_seed(1) != cells[0].cell_seed(2)

    def test_config_hash_tracks_params_and_seed(self):
        base = tiny_grid().expand()[0]
        changed = tiny_grid(params={"transfer_bytes": 50_000, "horizon": 10.0}).expand()[0]
        assert base.config_hash(1) != changed.config_hash(1)
        assert base.config_hash(1) != base.config_hash(2)
        assert base.config_hash(1) == base.config_hash(1)


class TestCache:
    def test_round_trip_stamps_schema_version(self, tmp_path):
        from repro.sweep import SWEEP_FORMAT_VERSION

        cache = CellCache(str(tmp_path / "cells"))
        assert cache.get("abc") is None
        cache.put("abc", {"result": {"x": 1}})
        assert cache.get("abc") == {
            "result": {"x": 1},
            "sweep_format_version": SWEEP_FORMAT_VERSION,
        }
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = CellCache(str(tmp_path))
        (tmp_path / "bad.json").write_text("{truncated")
        assert cache.get("bad") is None

    def test_stale_schema_version_is_a_miss(self, tmp_path):
        """A mismatched stamp must never leak a stale-schema payload
        downstream; an unstamped entry predates the stamp and is accepted."""
        cache = CellCache(str(tmp_path))
        (tmp_path / "old.json").write_text(
            json.dumps({"result": {"x": 1}, "sweep_format_version": 1})
        )
        assert cache.get("old") is None
        (tmp_path / "unstamped.json").write_text(json.dumps({"result": {"x": 1}}))
        assert cache.get("unstamped") == {"result": {"x": 1}}


class TestRegistries:
    def test_registry_contents(self):
        # Every registered workload doubles as a sweep experiment.
        assert set(EXPERIMENTS) == {"bulk_transfer", "streaming", "http", "longlived"}
        assert {"dual_homed", "natted", "ecmp", "lan", "wifi_lte_handover", "asymmetric_loss",
                "bufferbloat_cellular", "path_failure_recovery", "addaddr_stripped"} <= set(SCENARIOS)
        assert {"passive", "fullmesh", "ndiffports", "smart_backup", "refresh",
                "userspace_fullmesh", "userspace_ndiffports"} <= set(CONTROLLERS)
        # Grid validation accepts every registered scheduler.
        tiny_grid(schedulers=sorted(SCHEDULER_REGISTRY)).validate()

    def test_run_cell_rejects_unknown_entries(self):
        spec = tiny_grid().expand()[0].as_dict()
        spec["scenario"] = "atlantis"
        with pytest.raises(ValueError):
            run_cell(spec, 1)


class TestEngine:
    def test_cache_hits_on_rerun(self, tmp_path):
        grid = tiny_grid(controllers=["passive", "fullmesh"])
        first = run_campaign(grid, workers=1, cache_dir=str(tmp_path))
        assert (first.cache_hits, first.cache_misses) == (0, 2)
        second = run_campaign(grid, workers=1, cache_dir=str(tmp_path))
        assert (second.cache_hits, second.cache_misses) == (2, 0)
        assert all(cell.cached for cell in second.cells)
        assert first.to_canonical_json() == second.to_canonical_json()

    def test_changed_seed_misses_cache(self, tmp_path):
        run_campaign(tiny_grid(), workers=1, cache_dir=str(tmp_path))
        rerun = run_campaign(tiny_grid(campaign_seed=12), workers=1, cache_dir=str(tmp_path))
        assert rerun.cache_misses == 1

    def test_progress_callback_sees_every_cell(self):
        seen = []
        grid = tiny_grid(controllers=["passive", "fullmesh"])
        run_campaign(
            grid,
            workers=1,
            progress=lambda spec, result, cached, telemetry: seen.append(spec.key),
        )
        assert sorted(seen) == sorted(cell.key for cell in grid.expand())

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            run_campaign(tiny_grid(), workers=0)

    def test_parallel_fallback_matches_serial(self, monkeypatch):
        import concurrent.futures

        grid = tiny_grid(controllers=["passive", "fullmesh"])
        serial = run_campaign(grid, workers=1)

        def broken_pool(*args, **kwargs):
            raise OSError("no process pool in this sandbox")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", broken_pool)
        fallen_back = run_campaign(grid, workers=4)
        assert fallen_back.parallel_fallback
        assert fallen_back.notes
        assert fallen_back.to_canonical_json() == serial.to_canonical_json()

    def test_metric_values_skip_incomplete_cells(self):
        grid = tiny_grid()
        result = run_campaign(grid, workers=1)
        values = result.metric_values("completion_time")
        assert values and all(value > 0 for value in values)


class TestReport:
    def test_report_mentions_every_scenario_and_cache_state(self, tmp_path):
        grid = tiny_grid(
            scenarios=["dual_homed", "asymmetric_loss"],
            controllers=["passive", "fullmesh"],
        )
        result = run_campaign(grid, workers=1, cache_dir=str(tmp_path))
        report = format_campaign_report(result)
        assert "dual_homed" in report and "asymmetric_loss" in report
        assert "0 cached / 4 computed" in report
        rerun = run_campaign(grid, workers=1, cache_dir=str(tmp_path))
        assert "4 cached / 0 computed" in format_campaign_report(rerun)

    def test_streaming_report_uses_block_metric(self):
        grid = tiny_grid(
            experiments=["streaming"],
            params={"block_count": 3, "horizon": 10.0},
        )
        report = format_campaign_report(run_campaign(grid, workers=1))
        assert "block_delay_mean" in report


class TestRunnerIntegration:
    def test_all_excludes_the_sweep_campaign(self, monkeypatch):
        """`smapp-experiments all` reproduces the paper figures only; the
        sweep, the single-cell runner, the registry listing and the
        regression-gate pair (baseline/diff) are opt-in."""
        from repro.experiments import runner

        opt_in = runner.OPT_IN
        assert {
            "sweep", "cell", "list", "baseline", "diff", "fuzz", "bench",
            "trace", "telemetry", "worker", "store",
        } == set(opt_in)
        ran = []
        monkeypatch.setattr(
            runner, "EXPERIMENTS", {name: lambda args, name=name: ran.append(name) or ""
                                    for name in runner.EXPERIMENTS}
        )
        assert runner.main(["all"]) == 0
        assert not opt_in & set(ran)
        assert ran == sorted(name for name in runner.EXPERIMENTS if name not in opt_in)

    def test_import_error_during_pool_setup_falls_back(self, monkeypatch):
        import concurrent.futures

        grid = tiny_grid(controllers=["passive", "fullmesh"])

        def no_semaphores(*args, **kwargs):
            raise ImportError("This platform lacks a functioning sem_open implementation")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", no_semaphores)
        result = run_campaign(grid, workers=4)
        assert result.parallel_fallback
        assert result.cell_count == 2

    def test_cell_error_aborts_instead_of_falling_back(self):
        """An exception from a cell's own code must propagate, not be
        misread as 'pool unavailable' and trigger a serial re-run."""
        grid = tiny_grid(
            controllers=["passive", "fullmesh"],
            params={"transfer_bytes": "not-a-number", "horizon": 10.0},
        )
        with pytest.raises(ValueError):
            run_campaign(grid, workers=2)
        with pytest.raises(ValueError):
            run_campaign(grid, workers=1)
