"""Tests for the Netlink codec, channel, kernel PM and userspace library."""

import pytest

from repro.core import codec
from repro.core.commands import (
    CreateSubflowCommand,
    GetConnInfoCommand,
    GetSubflowInfoCommand,
    ListSubflowsCommand,
    CommandReply,
    RemoveSubflowCommand,
    ReplyStatus,
    SetBackupCommand,
)
from repro.core.events import (
    AddAddrEvent,
    ConnClosedEvent,
    ConnCreatedEvent,
    ConnEstablishedEvent,
    DelLocalAddrEvent,
    EventType,
    NewLocalAddrEvent,
    RemAddrEvent,
    SubflowClosedEvent,
    SubflowEstablishedEvent,
    TimeoutEvent,
)
from repro.core.library import PathManagerLibrary
from repro.core.netlink import NetlinkChannel
from repro.net.addressing import FourTuple, ip
from repro.sim.latency import ConstantLatency

TUPLE = FourTuple(ip("10.0.0.1"), 41000, ip("10.0.0.2"), 80)

EVENTS = [
    ConnCreatedEvent(1.5, 0xAABB, TUPLE, 1, True),
    ConnEstablishedEvent(1.6, 0xAABB, TUPLE),
    ConnClosedEvent(9.0, 0xAABB),
    SubflowEstablishedEvent(2.0, 0xAABB, 2, TUPLE, True),
    SubflowClosedEvent(3.0, 0xAABB, 2, TUPLE, 110),
    TimeoutEvent(4.0, 0xAABB, 1, 1.6, 3),
    AddAddrEvent(5.0, 0xAABB, 2, ip("10.1.0.2"), 8080),
    RemAddrEvent(6.0, 0xAABB, 2),
    NewLocalAddrEvent(7.0, ip("10.1.0.1"), "cell0"),
    DelLocalAddrEvent(8.0, ip("10.1.0.1"), "cell0"),
]

COMMANDS = [
    CreateSubflowCommand(1, 0xAABB, ip("10.1.0.1"), 0, ip("10.1.0.2"), 80, True),
    CreateSubflowCommand(2, 0xAABB, ip("10.1.0.1")),
    RemoveSubflowCommand(3, 0xAABB, 4, False),
    GetConnInfoCommand(4, 0xAABB),
    GetSubflowInfoCommand(5, 0xAABB, 7),
    ListSubflowsCommand(6, 0xAABB),
    SetBackupCommand(7, 0xAABB, 2, True),
]


class TestCodec:
    @pytest.mark.parametrize("event", EVENTS, ids=lambda e: type(e).__name__)
    def test_event_roundtrip(self, event):
        decoded = codec.decode_event(codec.encode_event(event))
        assert decoded == event
        assert decoded.event_type == event.event_type

    @pytest.mark.parametrize("command", COMMANDS, ids=lambda c: f"{type(c).__name__}-{c.request_id}")
    def test_command_roundtrip(self, command):
        decoded = codec.decode_command(codec.encode_command(command))
        assert decoded == command

    def test_reply_roundtrip_with_nested_payload(self):
        reply = CommandReply(
            9,
            ReplyStatus.OK,
            {
                "rto": 0.204,
                "snd_una": 123456,
                "state": "ESTABLISHED",
                "backup": True,
                "nothing": None,
                "subflows": [{"subflow_id": 1, "pacing_rate": 1.25e6}, {"subflow_id": 2, "pacing_rate": 2.5e5}],
            },
        )
        decoded = codec.decode_reply(codec.encode_reply(reply))
        assert decoded.request_id == 9
        assert decoded.ok
        assert decoded.payload["snd_una"] == 123456
        assert decoded.payload["state"] == "ESTABLISHED"
        assert decoded.payload["backup"] is True
        assert decoded.payload["nothing"] is None
        assert decoded.payload["subflows"][1]["subflow_id"] == 2

    def test_message_kind(self):
        assert codec.message_kind(codec.encode_event(EVENTS[0])) == codec.KIND_EVENT
        assert codec.message_kind(codec.encode_command(COMMANDS[0])) == codec.KIND_COMMAND
        assert codec.message_kind(codec.encode_reply(CommandReply(1, ReplyStatus.OK))) == codec.KIND_REPLY

    def test_kind_mismatch_rejected(self):
        event_bytes = codec.encode_event(EVENTS[0])
        with pytest.raises(codec.CodecError):
            codec.decode_command(event_bytes)
        with pytest.raises(codec.CodecError):
            codec.decode_reply(event_bytes)

    def test_short_message_rejected(self):
        with pytest.raises(codec.CodecError):
            codec.message_kind(b"\x01")


class TestNetlinkChannel:
    def test_messages_delivered_with_latency(self, sim):
        channel = NetlinkChannel(sim, ConstantLatency(10e-6), ConstantLatency(10e-6))
        received = []
        channel.bind_user(lambda msg: received.append((sim.now, msg)))
        channel.send_to_user(b"hello")
        sim.run()
        assert received[0][1] == b"hello"
        assert received[0][0] == pytest.approx(10e-6)

    def test_fifo_order_preserved(self, sim):
        channel = NetlinkChannel(sim, name="fifo")
        received = []
        channel.bind_user(received.append)
        for index in range(50):
            channel.send_to_user(bytes([index]))
        sim.run()
        assert received == [bytes([index]) for index in range(50)]

    def test_both_directions_and_counters(self, sim):
        channel = NetlinkChannel(sim)
        to_kernel, to_user = [], []
        channel.bind_kernel(to_kernel.append)
        channel.bind_user(to_user.append)
        channel.send_to_kernel(b"cmd")
        channel.send_to_user(b"event")
        sim.run()
        assert to_kernel == [b"cmd"] and to_user == [b"event"]
        assert channel.messages_to_kernel == 1
        assert channel.messages_to_user == 1
        assert channel.bytes_to_user == 5

    def test_unbound_side_drops_silently(self, sim):
        channel = NetlinkChannel(sim)
        channel.send_to_user(b"nobody")
        sim.run()


class TestLibraryDispatch:
    def build(self, sim):
        channel = NetlinkChannel(sim, ConstantLatency(1e-6), ConstantLatency(1e-6))
        library = PathManagerLibrary(channel, processing_latency=ConstantLatency(1e-6))
        return channel, library

    def test_registered_callback_receives_event(self, sim):
        channel, library = self.build(sim)
        seen = []
        library.register(EventType.TIMEOUT, seen.append)
        channel.send_to_user(codec.encode_event(TimeoutEvent(1.0, 5, 1, 0.4, 2)))
        sim.run()
        assert len(seen) == 1 and seen[0].rto == pytest.approx(0.4)

    def test_unregistered_events_counted_as_ignored(self, sim):
        channel, library = self.build(sim)
        channel.send_to_user(codec.encode_event(ConnClosedEvent(1.0, 5)))
        sim.run()
        assert library.events_ignored == 1

    def test_register_all_and_unregister(self, sim):
        channel, library = self.build(sim)
        seen = []
        library.register_all(seen.append)
        library.unregister(EventType.CONN_CLOSED, seen.append)
        channel.send_to_user(codec.encode_event(ConnClosedEvent(1.0, 5)))
        channel.send_to_user(codec.encode_event(TimeoutEvent(1.0, 5, 1, 0.4, 2)))
        sim.run()
        assert len(seen) == 1

    def test_command_reply_correlation(self, sim):
        channel, library = self.build(sim)
        # Fake kernel: answer every command with an OK reply echoing the id.
        def kernel(message):
            command = codec.decode_command(message)
            channel.send_to_user(codec.encode_reply(CommandReply(command.request_id, ReplyStatus.OK, {"echo": 1})))

        channel.bind_kernel(kernel)
        replies = []
        library.create_subflow(5, "10.0.0.1", on_reply=replies.append)
        library.get_conn_info(5, replies.append)
        sim.run()
        assert len(replies) == 2
        assert all(reply.ok for reply in replies)
        assert library.commands_sent == 2
        assert library.replies_received == 2

    def test_request_ids_unique(self, sim):
        channel, library = self.build(sim)
        ids = {library.next_request_id() for _ in range(100)}
        assert len(ids) == 100
