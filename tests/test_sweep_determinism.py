"""The determinism regression net for the sweep engine and the simulator.

Two guarantees are pinned here:

1. A campaign's aggregated output is byte-identical whether cells run
   serially, on 2 workers, or on 4 workers — and whether results come from
   the on-disk cache or fresh runs.
2. Every netem scenario is trace-deterministic: two simulators built with
   the same seed produce identical packet traces, packet for packet.
"""

import pytest

from repro.sweep import SCENARIOS, CampaignGrid, run_campaign, run_cell


def acceptance_grid() -> CampaignGrid:
    """The ISSUE's acceptance matrix: 2 × 2 × 3 × 2 = 24 cells."""
    return CampaignGrid(
        name="acceptance",
        campaign_seed=42,
        experiments=["bulk_transfer"],
        scenarios=["dual_homed", "asymmetric_loss", "path_failure_recovery"],
        schedulers=["lowest_rtt", "round_robin"],
        controllers=["passive", "fullmesh"],
        seeds=2,
        params={"transfer_bytes": 120_000, "horizon": 20.0},
    )


def workload_acceptance_grid() -> CampaignGrid:
    """The heavier workloads (http, longlived) across the lossy scenarios."""
    return CampaignGrid(
        name="acceptance-workloads",
        campaign_seed=42,
        experiments=["http", "longlived"],
        scenarios=["dual_homed", "asymmetric_loss", "path_failure_recovery"],
        schedulers=["lowest_rtt"],
        controllers=["fullmesh", "userspace_fullmesh"],
        seeds=2,
        params={
            "request_count": 2,
            "object_size": 40_000,
            "message_interval": 2.0,
            "horizon": 15.0,
        },
    )


def fuzz_acceptance_grid() -> CampaignGrid:
    """Faulted scenario variants and their twins (the fuzz-cell contract)."""
    return CampaignGrid(
        name="acceptance-fuzz",
        campaign_seed=42,
        experiments=["bulk_transfer"],
        scenarios=["dual_homed", "faulted_dual_homed", "faulted_path", "faulted_lan", "lan"],
        schedulers=["lowest_rtt"],
        controllers=["fullmesh"],
        seeds=2,
        params={"transfer_bytes": 80_000, "horizon": 15.0},
    )


def downgrade_acceptance_grid() -> CampaignGrid:
    """MP_CAPABLE-interference scenarios next to their clean twin."""
    return CampaignGrid(
        name="acceptance-downgrade",
        campaign_seed=42,
        experiments=["bulk_transfer"],
        scenarios=[
            "dual_homed",
            "faulted_downgrade",
            "mpcapable_stripped",
            "mpcapable_stripped_synack",
        ],
        schedulers=["lowest_rtt"],
        controllers=["fullmesh"],
        seeds=2,
        params={"transfer_bytes": 60_000, "horizon": 15.0},
    )


def scale_acceptance_grid() -> CampaignGrid:
    """The connections scale axis: single- and 100-connection cells."""
    return CampaignGrid(
        name="acceptance-scale",
        campaign_seed=42,
        experiments=["bulk_transfer"],
        scenarios=["dual_homed"],
        schedulers=["lowest_rtt"],
        controllers=["passive"],
        connections=[1, 100],
        seeds=2,
        params={
            "transfer_bytes": 4_000,
            "horizon": 10.0,
            "trace_probe": False,
            "connection_stagger": 2.0,
        },
    )


class TestCampaignWorkerIndependence:
    def test_serial_two_and_four_workers_are_byte_identical(self):
        grid = acceptance_grid()
        assert grid.cell_count == 24
        serial = run_campaign(grid, workers=1)
        two = run_campaign(grid, workers=2)
        four = run_campaign(grid, workers=4)
        assert serial.to_canonical_json() == two.to_canonical_json()
        assert serial.to_canonical_json() == four.to_canonical_json()

    def test_http_and_longlived_cells_are_worker_count_independent(self):
        """The unified harness keeps the byte-identity contract for the
        workloads it newly opened to the sweep engine."""
        grid = workload_acceptance_grid()
        assert grid.cell_count == 24
        serial = run_campaign(grid, workers=1)
        two = run_campaign(grid, workers=2)
        four = run_campaign(grid, workers=4)
        assert serial.to_canonical_json() == two.to_canonical_json()
        assert serial.to_canonical_json() == four.to_canonical_json()
        # Every cell actually carried traffic (no silently empty runs).
        for cell in serial.cells:
            assert cell.result["trace_packets"] > 0, cell.spec.key

    def test_fuzz_cells_and_triage_are_worker_count_independent(self):
        """Faulted cells derive their FaultPlan from the cell seed, so the
        campaign — and the triage report built from it — must be
        byte-identical at any worker count."""
        from repro.analysis.faults import triage_campaign, triage_json

        grid = fuzz_acceptance_grid()
        serial = run_campaign(grid, workers=1)
        two = run_campaign(grid, workers=2)
        four = run_campaign(grid, workers=4)
        assert serial.to_canonical_json() == two.to_canonical_json()
        assert serial.to_canonical_json() == four.to_canonical_json()
        assert triage_json(triage_campaign(serial)) == triage_json(triage_campaign(four))
        for cell in serial.cells:
            assert cell.result["trace_packets"] > 0, cell.spec.key
            if cell.spec.scenario.startswith("faulted"):
                assert cell.result["fault_events_scheduled"] > 0, cell.spec.key

    def test_downgrade_cells_are_worker_count_independent(self):
        """The acceptance criterion: a faulted cell whose plan strips
        MP_CAPABLE during the handshake completes with at least one
        fallback connection and nonzero goodput (triage verdict
        ``fallback``, not ``failed``), the clean twin stays untouched by
        the fallback machinery — and everything is byte-identical at 1 and
        4 workers."""
        from repro.analysis.faults import triage_campaign, triage_json

        grid = downgrade_acceptance_grid()
        serial = run_campaign(grid, workers=1)
        four = run_campaign(grid, workers=4)
        assert serial.to_canonical_json() == four.to_canonical_json()
        assert triage_json(triage_campaign(serial)) == triage_json(triage_campaign(four))

        for cell in serial.cells:
            scenario = cell.spec.scenario
            metrics = cell.result
            if scenario == "dual_homed":
                # The clean twin carries no fallback metrics at all.
                assert "fallback_connections" not in metrics, cell.spec.key
                continue
            assert metrics["fallback_connections"] >= 1, cell.spec.key
            assert metrics["goodput_mbps"] > 0, cell.spec.key
            if scenario == "faulted_downgrade":
                # The curated plan actually fired its MP_CAPABLE strip.
                assert metrics["fault_options_stripped"] > 0, cell.spec.key

        triage = triage_campaign(serial)
        verdicts = {row["key"]: row["verdict"] for row in triage["rows"]}
        assert verdicts and all(verdict == "fallback" for verdict in verdicts.values()), verdicts

    def test_scale_cells_are_worker_count_independent(self):
        """The scale-axis acceptance criterion: 100-connection cells are
        byte-identical at 1 and 4 workers, carry the bounded ``agg_*``
        summary metrics, and the single-connection cells riding in the
        same campaign stay entirely free of them."""
        grid = scale_acceptance_grid()
        assert grid.cell_count == 4
        serial = run_campaign(grid, workers=1)
        four = run_campaign(grid, workers=4)
        assert serial.to_canonical_json() == four.to_canonical_json()

        for cell in serial.cells:
            metrics = cell.result
            if cell.spec.connections == 1:
                assert not any(name.startswith("agg_") for name in metrics), cell.spec.key
                assert "/conn" not in cell.spec.key
                continue
            assert cell.spec.key.endswith("/conn100")
            assert metrics["agg_connections"] == 100, cell.spec.key
            assert metrics["agg_connections_started"] == 100, cell.spec.key
            assert metrics["agg_goodput_mbps_sum"] > 0, cell.spec.key
            assert metrics["connections_initiated"] == 100, cell.spec.key
            # All 100 tiny transfers complete within the horizon.
            assert metrics["bytes_delivered"] == 100 * 4_000, cell.spec.key

    def test_cached_rerun_is_byte_identical_and_all_hits(self, tmp_path):
        grid = acceptance_grid()
        first = run_campaign(grid, workers=4, cache_dir=str(tmp_path))
        assert first.cache_misses == 24
        second = run_campaign(grid, workers=4, cache_dir=str(tmp_path))
        assert second.cache_hits == 24 and second.cache_misses == 0
        assert first.to_canonical_json() == second.to_canonical_json()

    def test_campaign_seed_changes_results(self):
        grid_a = acceptance_grid()
        grid_b = acceptance_grid()
        grid_b.campaign_seed = 43
        a = run_campaign(grid_a, workers=1)
        b = run_campaign(grid_b, workers=1)
        digests_a = [cell.result["trace_digest"] for cell in a.cells]
        digests_b = [cell.result["trace_digest"] for cell in b.cells]
        assert digests_a != digests_b


#: Small per-workload parameters for the per-cell determinism checks.
CELL_PARAMS = {
    "bulk_transfer": {"transfer_bytes": 50_000, "horizon": 12.0},
    "streaming": {"block_count": 3, "horizon": 12.0},
    "http": {"request_count": 2, "object_size": 30_000, "horizon": 12.0},
    "longlived": {"message_interval": 2.0, "horizon": 12.0},
}


def _cell_spec(experiment: str, scenario: str) -> dict:
    return {
        "experiment": experiment,
        "scenario": scenario,
        "scheduler": "lowest_rtt",
        "controller": "fullmesh",
        "seed_index": 0,
        "params": CELL_PARAMS[experiment],
    }


class TestScenarioTraceDeterminism:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_same_seed_same_trace(self, scenario):
        spec = _cell_spec("bulk_transfer", scenario)
        first = run_cell(spec, 9)
        second = run_cell(spec, 9)
        assert first == second
        assert first["trace_digest"] == second["trace_digest"]
        assert first["trace_packets"] > 0

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_different_seed_different_trace(self, scenario):
        spec = _cell_spec("bulk_transfer", scenario)
        assert run_cell(spec, 9)["trace_digest"] != run_cell(spec, 10)["trace_digest"]


class TestWorkloadTraceDeterminism:
    """Every workload's cells replay exactly, on every scenario."""

    @pytest.mark.parametrize("experiment", ["streaming", "http", "longlived"])
    @pytest.mark.parametrize(
        "scenario", ["dual_homed", "asymmetric_loss", "path_failure_recovery"]
    )
    def test_same_seed_same_trace(self, experiment, scenario):
        spec = _cell_spec(experiment, scenario)
        first = run_cell(spec, 9)
        second = run_cell(spec, 9)
        assert first == second
        assert first["trace_packets"] > 0

    @pytest.mark.parametrize("experiment", ["streaming", "http", "longlived"])
    def test_different_seed_different_trace(self, experiment):
        spec = _cell_spec(experiment, "dual_homed")
        assert run_cell(spec, 9)["trace_digest"] != run_cell(spec, 10)["trace_digest"]
