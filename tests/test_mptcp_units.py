"""Unit tests for MPTCP options, tokens, schedulers and configuration."""

import pytest

from repro.mptcp.config import MptcpConfig
from repro.mptcp.options import (
    AddAddrOption,
    DssOption,
    MpCapableOption,
    MpJoinOption,
    MpPrioOption,
    RemoveAddrOption,
)
from repro.mptcp.scheduler import (
    LowestRttScheduler,
    RedundantScheduler,
    RoundRobinScheduler,
    make_scheduler,
)
from repro.mptcp.subflow import Subflow, SubflowOrigin
from repro.mptcp.token import derive_initial_data_seq, derive_token, generate_key
from repro.sim.randomness import RandomSource
from repro.tcp.config import TcpConfig


class TestOptions:
    def test_mp_capable_validation(self):
        MpCapableOption(sender_key=1)
        with pytest.raises(ValueError):
            MpCapableOption(sender_key=1 << 64)
        with pytest.raises(ValueError):
            MpCapableOption(sender_key=1, receiver_key=1 << 64)

    def test_mp_join_validation(self):
        MpJoinOption(token=5, address_id=3, backup=True)
        with pytest.raises(ValueError):
            MpJoinOption(token=1 << 32)
        with pytest.raises(ValueError):
            MpJoinOption(token=1, address_id=300)

    def test_dss_mapping_helpers(self):
        dss = DssOption(data_seq=100, data_len=50, data_ack=20)
        assert dss.has_mapping
        assert dss.mapping_end == 150
        ack_only = DssOption(data_ack=20)
        assert not ack_only.has_mapping
        with pytest.raises(ValueError):
            ack_only.mapping_end

    def test_dss_validation(self):
        with pytest.raises(ValueError):
            DssOption(data_seq=-1, data_len=10)
        with pytest.raises(ValueError):
            DssOption(data_len=-1)

    def test_add_addr_validation(self):
        from repro.net.addressing import ip

        AddAddrOption(address_id=1, address=ip("10.0.0.1"))
        with pytest.raises(ValueError):
            AddAddrOption(address_id=256, address=ip("10.0.0.1"))

    def test_remove_addr_validation(self):
        RemoveAddrOption(address_id=1)
        with pytest.raises(ValueError):
            RemoveAddrOption(address_id=-1)

    def test_wire_lengths(self):
        assert MpCapableOption(sender_key=1).wire_length == 12
        assert MpJoinOption(token=1).wire_length == 12
        assert DssOption(data_ack=1).wire_length == 20
        assert MpPrioOption(backup=True).wire_length == 4


class TestTokens:
    def test_token_is_deterministic(self):
        assert derive_token(0x1234) == derive_token(0x1234)

    def test_token_differs_across_keys(self):
        assert derive_token(1) != derive_token(2)

    def test_token_fits_32_bits(self):
        for key in (0, 1, 0xFFFFFFFFFFFFFFFF):
            assert 0 <= derive_token(key) < (1 << 32)

    def test_invalid_key_rejected(self):
        with pytest.raises(ValueError):
            derive_token(1 << 64)
        with pytest.raises(ValueError):
            derive_initial_data_seq(-1)

    def test_generate_key_range_and_determinism(self):
        rng = RandomSource(5)
        key = generate_key(rng)
        assert 0 <= key < (1 << 64)
        assert generate_key(RandomSource(5)) == generate_key(RandomSource(5))

    def test_initial_data_seq(self):
        assert 0 <= derive_initial_data_seq(42) < (1 << 32)


class FakeSocket:
    """A stand-in socket exposing only what the schedulers look at."""

    def __init__(self, srtt, window, established=True):
        class _Rtt:
            pass

        self.rtt = _Rtt()
        self.rtt.srtt = srtt
        self._window = window
        self._established = established
        self.backup = False

    @property
    def is_established(self):
        return self._established

    @property
    def is_closed(self):
        return False

    def available_window(self):
        return self._window


def make_flow(flow_id, srtt, window, backup=False, established=True):
    import types

    flow = types.SimpleNamespace()
    flow.id = flow_id
    flow.backup = backup
    flow.socket = FakeSocket(srtt, window, established)
    flow.is_usable = established
    flow.is_established = established
    flow.is_closed = False
    return flow


class TestSchedulers:
    def test_lowest_rtt_prefers_smaller_srtt(self):
        scheduler = LowestRttScheduler()
        flows = [make_flow(1, 0.05, 10_000), make_flow(2, 0.01, 10_000)]
        assert scheduler.select(flows, 1400).id == 2

    def test_lowest_rtt_prefers_unmeasured_subflow(self):
        scheduler = LowestRttScheduler()
        flows = [make_flow(1, 0.01, 10_000), make_flow(2, None, 10_000)]
        assert scheduler.select(flows, 1400).id == 2

    def test_window_exhausted_subflow_skipped(self):
        scheduler = LowestRttScheduler()
        flows = [make_flow(1, 0.01, 0), make_flow(2, 0.05, 10_000)]
        assert scheduler.select(flows, 1400).id == 2

    def test_returns_none_when_nothing_usable(self):
        scheduler = LowestRttScheduler()
        assert scheduler.select([make_flow(1, 0.01, 0)], 1400) is None
        assert scheduler.select([], 1400) is None

    def test_backup_only_used_when_no_regular_subflow(self):
        scheduler = LowestRttScheduler()
        backup = make_flow(1, 0.01, 10_000, backup=True)
        regular = make_flow(2, 0.20, 10_000)
        assert scheduler.select([backup, regular], 1400).id == 2
        assert scheduler.select([backup], 1400).id == 1

    def test_redundant_scheduler_ignores_backup_priority(self):
        scheduler = RedundantScheduler()
        backup = make_flow(1, 0.01, 10_000, backup=True)
        regular = make_flow(2, 0.20, 10_000)
        assert scheduler.select([backup, regular], 1400).id == 1

    def test_round_robin_cycles(self):
        scheduler = RoundRobinScheduler()
        flows = [make_flow(1, 0.01, 10_000), make_flow(2, 0.01, 10_000), make_flow(3, 0.01, 10_000)]
        picks = [scheduler.select(flows, 1400).id for _ in range(6)]
        assert picks == [1, 2, 3, 1, 2, 3]

    def test_factory(self):
        assert isinstance(make_scheduler("lowest_rtt"), LowestRttScheduler)
        assert isinstance(make_scheduler("round_robin"), RoundRobinScheduler)
        assert isinstance(make_scheduler("redundant"), RedundantScheduler)
        with pytest.raises(ValueError):
            make_scheduler("bogus")


class TestMptcpConfig:
    def test_defaults_valid(self):
        MptcpConfig().validate()

    def test_invalid_scheduler_rejected(self):
        with pytest.raises(ValueError):
            MptcpConfig(scheduler="bogus").validate()

    def test_invalid_max_subflows_rejected(self):
        with pytest.raises(ValueError):
            MptcpConfig(max_subflows=0).validate()

    def test_overrides(self):
        config = MptcpConfig().with_overrides(scheduler="round_robin", tcp=TcpConfig(mss=900))
        assert config.scheduler == "round_robin"
        assert config.tcp.mss == 900


class TestSubflow:
    def _subflow(self, sim, backup=False, origin=SubflowOrigin.INITIAL):
        from repro.net.addressing import ip
        from repro.tcp.socket import TcpSocket

        socket = TcpSocket(sim, ip("10.0.0.1"), 1000, ip("10.0.0.2"), 80, transmit=lambda seg: None)
        return Subflow(1, socket, origin, backup=backup)

    def test_initial_flag(self, sim):
        assert self._subflow(sim).is_initial
        assert not self._subflow(sim, origin=SubflowOrigin.CONTROLLER).is_initial

    def test_backup_flag_propagates_to_socket(self, sim):
        flow = self._subflow(sim, backup=True)
        assert flow.socket.backup is True

    def test_lifecycle_marks(self, sim):
        flow = self._subflow(sim)
        assert not flow.is_established
        flow.mark_established(1.0)
        assert flow.established_at == 1.0
        flow.mark_closed(2.0, 104)
        assert flow.is_closed
        assert flow.close_reason == 104
        # idempotent
        flow.mark_closed(3.0, 0)
        assert flow.closed_at == 2.0

    def test_info_snapshot(self, sim):
        flow = self._subflow(sim)
        assert flow.info().state == "CLOSED"


class TestRoundRobinChurn:
    """The rotation cursor must survive subflows joining and leaving."""

    def test_cursor_resets_when_highest_id_subflow_leaves(self):
        scheduler = RoundRobinScheduler()
        flows = {flow_id: make_flow(flow_id, 0.01, 10_000) for flow_id in (1, 2, 5)}
        assert scheduler.select(list(flows.values()), 1400).id == 1
        assert scheduler.select(list(flows.values()), 1400).id == 2
        assert scheduler.select(list(flows.values()), 1400).id == 5
        # Subflow 5 (the one that set the cursor) is closed; the rotation
        # must restart cleanly over the survivors instead of staying pinned
        # past the now-stale id.
        del flows[5]
        picks = [scheduler.select(list(flows.values()), 1400).id for _ in range(4)]
        assert picks == [1, 2, 1, 2]
        assert scheduler._last_id == 2

    def test_cursor_survives_new_higher_id_subflow(self):
        scheduler = RoundRobinScheduler()
        flows = {flow_id: make_flow(flow_id, 0.01, 10_000) for flow_id in (1, 2)}
        assert scheduler.select(list(flows.values()), 1400).id == 1
        flows[3] = make_flow(3, 0.01, 10_000)
        assert scheduler.select(list(flows.values()), 1400).id == 2
        assert scheduler.select(list(flows.values()), 1400).id == 3
        assert scheduler.select(list(flows.values()), 1400).id == 1

    def test_full_churn_replaces_every_subflow(self):
        scheduler = RoundRobinScheduler()
        first_generation = [make_flow(1, 0.01, 10_000), make_flow(2, 0.01, 10_000)]
        assert scheduler.select(first_generation, 1400).id == 1
        assert scheduler.select(first_generation, 1400).id == 2
        # Entirely new subflow set with lower ids than the stale cursor.
        second_generation = [make_flow(1, 0.01, 10_000)]
        assert scheduler.select(second_generation, 1400).id == 1
        assert scheduler.select(second_generation, 1400).id == 1

    def test_stale_cursor_does_not_skip_low_id_survivors(self):
        scheduler = RoundRobinScheduler()
        flows = {flow_id: make_flow(flow_id, 0.01, 10_000) for flow_id in (1, 2, 5)}
        assert scheduler.select(list(flows.values()), 1400).id == 1
        assert scheduler.select(list(flows.values()), 1400).id == 2
        assert scheduler.select(list(flows.values()), 1400).id == 5
        # Subflow 5 is replaced by subflow 7.  A stale cursor at 5 would
        # hand the turn straight to 7; the rotation must restart instead so
        # flows 1 and 2 are not skipped.
        del flows[5]
        flows[7] = make_flow(7, 0.01, 10_000)
        picks = [scheduler.select(list(flows.values()), 1400).id for _ in range(4)]
        assert picks == [1, 2, 7, 1]

    def test_closed_subflow_in_unpruned_list_releases_cursor(self):
        """The connection never prunes its subflow list — a closed subflow
        stays in it.  The cursor must treat closed-but-listed as departed."""
        scheduler = RoundRobinScheduler()
        flows = {flow_id: make_flow(flow_id, 0.01, 10_000) for flow_id in (1, 2, 5)}
        assert scheduler.select(list(flows.values()), 1400).id == 1
        assert scheduler.select(list(flows.values()), 1400).id == 2
        assert scheduler.select(list(flows.values()), 1400).id == 5
        # Subflow 5 closes but remains in the list, and subflow 7 joins.
        flows[5].is_closed = True
        flows[5].is_usable = False
        flows[5].is_established = False
        flows[7] = make_flow(7, 0.01, 10_000)
        picks = [scheduler.select(list(flows.values()), 1400).id for _ in range(4)]
        assert picks == [1, 2, 7, 1]

    def test_cursor_cleared_rather_than_stale_after_wrap(self):
        scheduler = RoundRobinScheduler()
        flows = [make_flow(7, 0.01, 10_000)]
        assert scheduler.select(flows, 1400).id == 7
        assert scheduler.select(flows, 1400).id == 7
        assert scheduler._last_id == 7
