"""The ``connections`` scale axis: grid back-compat, harness fan-out,
and the AggregateProbe's bounded summary statistics.

The axis ships with a hard compatibility promise: a cell at the default of
one connection is serialised, keyed, seeded and hashed exactly as it was
before the axis existed.  The first test class pins that promise; the rest
cover the many-connection fan-out itself.
"""

import json

import pytest

from repro.analysis.aggregate import AGGREGATE_STATS, fold_series, group_cells
from repro.sweep.grid import CampaignGrid, CellSpec
from repro.workloads import AggregateProbe, Harness, HarnessSpec

SMALL_PARAMS = {"transfer_bytes": 6_000, "connection_stagger": 1.0}


def run_bulk(connections: int, seed: int = 7, **overrides) -> "HarnessSpec":
    spec = HarnessSpec(
        workload="bulk_transfer",
        scenario="dual_homed",
        controller="passive",
        scheduler="lowest_rtt",
        seed=seed,
        horizon=10.0,
        connections=connections,
        trace_probe=False,
        params=dict(SMALL_PARAMS, **overrides),
    )
    return Harness().run(spec)


class TestGridBackCompat:
    """connections=1 cells must be indistinguishable from pre-axis cells."""

    def test_default_cell_key_has_no_connections_segment(self):
        spec = CellSpec("bulk_transfer", "dual_homed", "lowest_rtt", "passive", 0)
        assert spec.key == "bulk_transfer/dual_homed/lowest_rtt/passive/seed0"
        many = CellSpec(
            "bulk_transfer", "dual_homed", "lowest_rtt", "passive", 0, connections=100
        )
        assert many.key == "bulk_transfer/dual_homed/lowest_rtt/passive/seed0/conn100"

    def test_default_cell_dict_omits_connections(self):
        spec = CellSpec("bulk_transfer", "dual_homed", "lowest_rtt", "passive", 0)
        assert "connections" not in spec.as_dict()
        many = CellSpec(
            "bulk_transfer", "dual_homed", "lowest_rtt", "passive", 0, connections=10
        )
        assert many.as_dict()["connections"] == 10
        assert CellSpec.from_dict(many.as_dict()) == many
        assert CellSpec.from_dict(spec.as_dict()) == spec

    def test_default_cell_seed_and_hash_are_unchanged(self):
        base = CellSpec("bulk_transfer", "dual_homed", "lowest_rtt", "passive", 0)
        explicit = CellSpec(
            "bulk_transfer", "dual_homed", "lowest_rtt", "passive", 0, connections=1
        )
        assert base.cell_seed(1) == explicit.cell_seed(1)
        assert base.config_hash(1) == explicit.config_hash(1)
        many = CellSpec(
            "bulk_transfer", "dual_homed", "lowest_rtt", "passive", 0, connections=10
        )
        assert many.cell_seed(1) != base.cell_seed(1)
        assert many.config_hash(1) != base.config_hash(1)

    def test_committed_baselines_still_hash_clean(self):
        for path in ("baselines/quick.json", "baselines/workloads.json"):
            baseline = json.load(open(path))
            for cell in baseline["cells"]:
                spec = CellSpec.from_dict(cell["spec"])
                assert spec.connections == 1
                assert spec.config_hash(baseline["campaign_seed"]) == cell["config_hash"], (
                    path, spec.key,
                )

    def test_connections_must_be_positive(self):
        with pytest.raises(ValueError):
            CellSpec("bulk_transfer", "dual_homed", "lowest_rtt", "passive", 0,
                     connections=0)

    def test_grid_expands_the_connections_axis_in_order(self):
        grid = CampaignGrid(
            name="g", experiments=["bulk_transfer"], scenarios=["dual_homed"],
            schedulers=["lowest_rtt"], controllers=["passive"],
            connections=[1, 10], seeds=2,
        )
        assert grid.cell_count == 4
        cells = grid.expand()
        assert [(cell.connections, cell.seed_index) for cell in cells] == [
            (1, 0), (1, 1), (10, 0), (10, 1),
        ]

    def test_grid_rejects_bad_connections_axes(self):
        kwargs = dict(
            experiments=["bulk_transfer"], scenarios=["dual_homed"],
            schedulers=["lowest_rtt"], controllers=["passive"],
        )
        with pytest.raises(ValueError):
            CampaignGrid(connections=[], **kwargs)
        with pytest.raises(ValueError):
            CampaignGrid(connections=[0], **kwargs)
        with pytest.raises(ValueError):
            CampaignGrid(connections=[10, 10], **kwargs)

    def test_validate_rejects_unsupported_workloads_at_scale(self):
        grid = CampaignGrid(
            experiments=["streaming"], scenarios=["dual_homed"],
            schedulers=["lowest_rtt"], controllers=["passive"],
            connections=[1, 10],
        )
        with pytest.raises(ValueError, match="does not support connections"):
            grid.validate()
        grid.connections = (1,)
        grid.validate()  # single-connection streaming stays sweepable

    def test_grouping_by_connections_tolerates_legacy_specs(self):
        legacy = {"spec": {"experiment": "bulk_transfer", "scenario": "dual_homed",
                           "scheduler": "lowest_rtt", "controller": "passive",
                           "seed_index": 0}, "result": {}}
        scaled = {"spec": {**legacy["spec"], "connections": 100}, "result": {}}
        groups = group_cells([legacy, scaled], by=("connections",))
        assert set(groups) == {("1",), ("100",)}


class TestHarnessFanOut:
    def test_single_connection_run_keeps_the_legacy_shape(self):
        run = run_bulk(1)
        assert run.drivers == [run.driver]
        assert run.connections == [run.connection]
        assert run.metrics["bytes_delivered"] == 6_000
        assert not any(name.startswith("agg_") for name in run.metrics)

    def test_many_connections_all_start_and_deliver(self):
        run = run_bulk(20)
        assert len(run.drivers) == 20 and all(run.drivers)
        assert len(run.server_apps) == 20
        assert run.driver is run.drivers[0]
        assert run.connection is run.connections[0]
        assert run.metrics["connections_initiated"] == 20
        assert run.metrics["bytes_delivered"] == 20 * 6_000
        # completion_time is the slowest transfer, so it bounds every one.
        slowest = run.metrics["completion_time"]
        assert all(d.completion_time <= slowest for d in run.drivers)

    def test_start_offsets_are_seed_derived(self):
        a = run_bulk(5, seed=7)
        b = run_bulk(5, seed=7)
        c = run_bulk(5, seed=8)
        starts = lambda run: [driver.started_at for driver in run.drivers]
        assert starts(a) == starts(b)
        assert starts(a) != starts(c)
        # Staggered: not all connections come up at the same instant.
        assert len(set(starts(a))) > 1

    def test_unsupported_workload_is_rejected(self):
        with pytest.raises(ValueError, match="does not support connections"):
            Harness().run(HarnessSpec(workload="streaming", connections=2))

    def test_zero_connections_is_rejected(self):
        with pytest.raises(ValueError, match="at least 1"):
            Harness().run(HarnessSpec(connections=0))


class TestAggregateProbe:
    def test_silent_on_single_connection_runs(self):
        assert AggregateProbe().collect(run_bulk(1)) == {}

    def test_key_order_is_pinned(self):
        """The summary-statistic ordering is a compatibility surface: the
        canonical campaign JSON sorts keys, but reports and baselines pin
        the exact set, so the emitted names are asserted one by one."""
        metrics = AggregateProbe().collect(run_bulk(4))
        expected = ["agg_connections", "agg_connections_started"]
        for prefix in ("agg_goodput_mbps", "agg_latency", "agg_subflows"):
            expected.extend(f"{prefix}_{stat}" for stat in AGGREGATE_STATS)
        assert list(metrics) == expected
        assert AGGREGATE_STATS == ("sum", "mean", "p50", "p95", "min", "max")

    def test_statistics_are_internally_consistent(self):
        metrics = AggregateProbe().collect(run_bulk(8))
        assert metrics["agg_connections"] == 8
        assert metrics["agg_connections_started"] == 8
        for prefix in ("agg_goodput_mbps", "agg_latency", "agg_subflows"):
            lo, hi = metrics[f"{prefix}_min"], metrics[f"{prefix}_max"]
            assert lo <= metrics[f"{prefix}_p50"] <= metrics[f"{prefix}_p95"] <= hi
            assert lo <= metrics[f"{prefix}_mean"] <= hi
        # Every connection opens exactly one subflow under the passive PM.
        assert metrics["agg_subflows_sum"] == 8.0

    def test_fold_series_handles_empty_and_singleton(self):
        empty = fold_series([], "x")
        assert list(empty) == [f"x_{stat}" for stat in AGGREGATE_STATS]
        assert all(value is None for value in empty.values())
        single = fold_series([3.5], "x")
        assert single == {"x_sum": 3.5, "x_mean": 3.5, "x_p50": 3.5,
                          "x_p95": 3.5, "x_min": 3.5, "x_max": 3.5}
