"""Reusable builders for integration-style tests.

Most MPTCP and controller tests need the same scaffolding: a dual-homed
client and server with stacks installed and a simple application pair.
These helpers keep the individual tests short and focused on behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.apps.bulk import BulkReceiverApp, BulkSenderApp
from repro.core.manager import SmappManager
from repro.mptcp.config import MptcpConfig
from repro.mptcp.connection import ConnectionListener, MptcpConnection
from repro.mptcp.path_manager import PathManager
from repro.mptcp.stack import MptcpStack
from repro.netem.scenarios import DualHomedScenario, build_dual_homed
from repro.sim.engine import Simulator

SERVER_PORT = 4000


class RecordingApp(ConnectionListener):
    """A listener that records every callback (useful in many tests)."""

    def __init__(self) -> None:
        self.established = 0
        self.data_bytes = 0
        self.data_acked: list[int] = []
        self.finished = 0
        self.closed = 0
        self.connection: Optional[MptcpConnection] = None

    def on_connection_established(self, conn: MptcpConnection) -> None:
        self.connection = conn
        self.established += 1

    def on_data(self, conn: MptcpConnection, new_bytes: int) -> None:
        self.data_bytes += new_bytes

    def on_data_acked(self, conn: MptcpConnection, data_una: int) -> None:
        self.data_acked.append(data_una)

    def on_connection_finished(self, conn: MptcpConnection) -> None:
        self.finished += 1
        conn.close()

    def on_connection_closed(self, conn: MptcpConnection) -> None:
        self.closed += 1


@dataclass
class DualHomedRig:
    """A dual-homed client/server pair with stacks installed."""

    sim: Simulator
    scenario: DualHomedScenario
    client_stack: MptcpStack
    server_stack: MptcpStack
    server_apps: list = field(default_factory=list)
    smapp: Optional[SmappManager] = None

    @property
    def client_addresses(self):
        """Client-side addresses (path 0, path 1)."""
        return self.scenario.client_addresses

    @property
    def server_addresses(self):
        """Server-side addresses (path 0, path 1)."""
        return self.scenario.server_addresses

    def connect_bulk(self, total_bytes: int, close_when_done: bool = True) -> tuple[BulkSenderApp, MptcpConnection]:
        """Open a connection with a bulk sender on the client side."""
        sender = BulkSenderApp(total_bytes, close_when_done=close_when_done)
        conn = self.client_stack.connect(
            self.server_addresses[0],
            SERVER_PORT,
            listener=sender,
            local_address=self.client_addresses[0],
        )
        return sender, conn

    def connect_recording(self) -> tuple[RecordingApp, MptcpConnection]:
        """Open a connection with a recording listener on the client side."""
        app = RecordingApp()
        conn = self.client_stack.connect(
            self.server_addresses[0],
            SERVER_PORT,
            listener=app,
            local_address=self.client_addresses[0],
        )
        return app, conn


def build_dual_homed_rig(
    seed: int = 7,
    rate_mbps: float = 10.0,
    delay_ms: float = 5.0,
    loss_percent: tuple[float, float] = (0.0, 0.0),
    client_pm: Optional[PathManager] = None,
    server_listener_factory=None,
    use_smapp: bool = False,
    expected_bytes: Optional[int] = None,
    config: Optional[MptcpConfig] = None,
) -> DualHomedRig:
    """Build the standard two-path test rig.

    ``server_listener_factory`` defaults to bulk receivers that also close
    the connection when the peer finishes.
    """
    sim = Simulator(seed=seed)
    scenario = build_dual_homed(sim, rate_mbps=rate_mbps, delay_ms=delay_ms, loss_percent=loss_percent)

    server_apps: list = []

    def default_factory():
        app = BulkReceiverApp(expected_bytes=expected_bytes)
        server_apps.append(app)
        return app

    factory = server_listener_factory
    if factory is None:
        factory = default_factory
    else:
        original = factory

        def wrapping_factory():
            app = original()
            server_apps.append(app)
            return app

        factory = wrapping_factory

    server_stack = MptcpStack(sim, scenario.server, config=config)
    server_stack.listen(SERVER_PORT, factory)

    smapp = None
    if use_smapp:
        smapp = SmappManager(sim, scenario.client, config=config)
        client_stack = smapp.stack
    else:
        client_stack = MptcpStack(sim, scenario.client, config=config, path_manager=client_pm)

    return DualHomedRig(
        sim=sim,
        scenario=scenario,
        client_stack=client_stack,
        server_stack=server_stack,
        server_apps=server_apps,
        smapp=smapp,
    )
