"""Integration tests for MPTCP connections, path managers and the stack."""

import errno

import pytest

from tests.helpers import RecordingApp, SERVER_PORT, build_dual_homed_rig
from repro.mptcp.path_manager import FullMeshPathManager, NdiffportsPathManager, PassivePathManager
from repro.mptcp.subflow import SubflowOrigin


class TestConnectionEstablishment:
    def test_initial_subflow_handshake(self):
        rig = build_dual_homed_rig()
        app, conn = rig.connect_recording()
        rig.sim.run(until=1.0)
        assert conn.established
        assert app.established == 1
        assert conn.initial_subflow.is_established
        assert len(rig.server_stack.connections) == 1

    def test_tokens_are_exchanged(self):
        rig = build_dual_homed_rig()
        app, conn = rig.connect_recording()
        rig.sim.run(until=1.0)
        server_conn = rig.server_stack.connections[0]
        assert conn.remote_token == server_conn.local_token
        assert server_conn.remote_token == conn.local_token

    def test_server_learns_connection_by_token(self):
        rig = build_dual_homed_rig()
        app, conn = rig.connect_recording()
        rig.sim.run(until=1.0)
        server_conn = rig.server_stack.connections[0]
        assert rig.server_stack.connection_by_token(server_conn.local_token) is server_conn

    def test_connect_to_closed_port_fails(self):
        rig = build_dual_homed_rig()
        app = RecordingApp()
        conn = rig.client_stack.connect(rig.server_addresses[0], 9999, listener=app)
        rig.sim.run(until=2.0)
        assert not conn.established
        assert conn.initial_subflow.is_closed

    def test_server_announces_second_address(self):
        rig = build_dual_homed_rig()
        app, conn = rig.connect_recording()
        rig.sim.run(until=1.0)
        assert rig.server_addresses[1] in [addr for addr, _ in conn.remote_addresses.values()]


class TestDataTransferAndTeardown:
    def test_bulk_transfer_and_clean_close(self):
        rig = build_dual_homed_rig(expected_bytes=300_000)
        sender, conn = rig.connect_bulk(300_000)
        rig.sim.run(until=20.0)
        assert sender.completed
        assert rig.server_apps[0].received_bytes == 300_000
        assert conn.closed
        assert rig.client_stack.connections == []
        assert rig.server_stack.connections == []

    def test_transfer_uses_multiple_subflows_with_fullmesh(self):
        rig = build_dual_homed_rig(client_pm=FullMeshPathManager(), expected_bytes=2_000_000)
        sender, conn = rig.connect_bulk(2_000_000)
        rig.sim.run(until=30.0)
        assert sender.completed
        used = [flow for flow in conn.subflows if flow.bytes_scheduled > 0]
        assert len(used) >= 2

    def test_aggregate_throughput_exceeds_single_path(self):
        rig = build_dual_homed_rig(client_pm=FullMeshPathManager(), rate_mbps=5.0, expected_bytes=2_000_000)
        sender, conn = rig.connect_bulk(2_000_000)
        rig.sim.run(until=30.0)
        assert sender.completed
        # One 5 Mbps path would need at least 3.2 s.
        assert sender.completion_time < 3.2

    def test_server_side_counts_match(self):
        rig = build_dual_homed_rig(expected_bytes=123_456)
        sender, conn = rig.connect_bulk(123_456)
        rig.sim.run(until=20.0)
        assert rig.server_apps[0].received_bytes == 123_456

    def test_data_ack_progress_reported(self):
        rig = build_dual_homed_rig()
        app, conn = rig.connect_recording()
        rig.sim.run(until=1.0)
        conn.send(10_000)
        rig.sim.run(until=2.0)
        assert app.data_acked and app.data_acked[-1] == 10_000
        assert conn.data_una == 10_000

    def test_send_on_closing_connection_rejected(self):
        rig = build_dual_homed_rig()
        app, conn = rig.connect_recording()
        rig.sim.run(until=1.0)
        conn.close()
        with pytest.raises(RuntimeError):
            conn.send(100)

    def test_abort_resets_all_subflows(self):
        rig = build_dual_homed_rig(client_pm=FullMeshPathManager())
        app, conn = rig.connect_recording()
        rig.sim.run(until=1.0)
        conn.abort()
        rig.sim.run(until=2.0)
        assert conn.closed
        assert all(flow.is_closed for flow in conn.subflows)
        assert rig.server_stack.connections == []


class TestSubflowManagement:
    def test_create_subflow_on_second_path(self):
        rig = build_dual_homed_rig()
        app, conn = rig.connect_recording()
        rig.sim.run(until=1.0)
        flow = conn.create_subflow(
            rig.client_addresses[1],
            remote_address=rig.server_addresses[1],
            remote_port=SERVER_PORT,
        )
        rig.sim.run(until=2.0)
        assert flow is not None
        assert flow.is_established
        assert flow.origin is SubflowOrigin.CONTROLLER
        server_conn = rig.server_stack.connections[0]
        assert len(server_conn.subflows) == 2

    def test_closed_subflows_are_compacted_out_of_the_live_list(self):
        rig = build_dual_homed_rig(client_pm=FullMeshPathManager())
        app, conn = rig.connect_recording()
        rig.sim.run(until=1.0)
        created = len(conn.subflows)
        assert created >= 2
        extra = [flow for flow in conn.subflows if not flow.is_initial][0]
        conn.remove_subflow(extra, reset=True)
        rig.sim.run(until=2.0)
        # The live list shrank; the history (and the created-count) did not.
        assert extra not in conn.live_subflows
        assert extra in conn.subflows
        assert len(conn.subflows) == conn.subflows_created == created
        assert all(not flow.is_closed for flow in conn.live_subflows)

    def test_subflow_by_id_stays_stable_across_compaction(self):
        rig = build_dual_homed_rig(client_pm=FullMeshPathManager())
        app, conn = rig.connect_recording()
        rig.sim.run(until=1.0)
        extra = [flow for flow in conn.subflows if not flow.is_initial][0]
        extra_id = extra.id
        conn.remove_subflow(extra, reset=True)
        rig.sim.run(until=2.0)
        # Ids are never reused and closed subflows stay resolvable, so
        # trace post-processing can keep referring to departed subflows.
        assert conn.subflow_by_id(extra_id) is extra
        replacement = conn.create_subflow(
            rig.client_addresses[1],
            remote_address=rig.server_addresses[1],
            remote_port=SERVER_PORT,
        )
        rig.sim.run(until=3.0)
        assert replacement is not None and replacement.id != extra_id

    def test_churn_does_not_grow_the_live_list(self):
        rig = build_dual_homed_rig()
        app, conn = rig.connect_recording()
        rig.sim.run(until=1.0)
        for round_index in range(5):
            flow = conn.create_subflow(
                rig.client_addresses[1],
                remote_address=rig.server_addresses[1],
                remote_port=SERVER_PORT,
            )
            rig.sim.run(until=rig.sim.now + 0.5)
            assert flow is not None and flow.is_established
            conn.remove_subflow(flow, reset=True)
            rig.sim.run(until=rig.sim.now + 0.5)
        # 1 initial + 5 churned in history, but only the initial stays live.
        assert conn.subflows_created == 6
        assert len(conn.live_subflows) == 1
        assert conn.live_subflows[0].is_initial

    def test_create_subflow_before_established_returns_none(self):
        rig = build_dual_homed_rig()
        app, conn = rig.connect_recording()
        assert conn.create_subflow(rig.client_addresses[1]) is None

    def test_remove_subflow_with_reset(self):
        rig = build_dual_homed_rig(client_pm=FullMeshPathManager())
        app, conn = rig.connect_recording()
        rig.sim.run(until=1.0)
        extra = [flow for flow in conn.subflows if not flow.is_initial][0]
        conn.remove_subflow(extra, reset=True)
        rig.sim.run(until=2.0)
        assert extra.is_closed
        assert extra.close_reason == errno.ECONNRESET
        server_conn = rig.server_stack.connections[0]
        assert sum(1 for flow in server_conn.subflows if flow.is_closed) == 1

    def test_max_subflow_cap(self):
        from repro.mptcp.config import MptcpConfig

        rig = build_dual_homed_rig(config=MptcpConfig(max_subflows=2))
        app, conn = rig.connect_recording()
        rig.sim.run(until=1.0)
        first = conn.create_subflow(rig.client_addresses[1])
        rig.sim.run(until=2.0)
        second = conn.create_subflow(rig.client_addresses[0])
        assert first is not None
        assert second is None

    def test_backup_subflow_not_used_while_regular_alive(self):
        rig = build_dual_homed_rig(expected_bytes=500_000)
        sender, conn = rig.connect_bulk(500_000, close_when_done=False)
        rig.sim.run(until=0.5)
        backup = conn.create_subflow(
            rig.client_addresses[1],
            remote_address=rig.server_addresses[1],
            remote_port=SERVER_PORT,
            backup=True,
        )
        rig.sim.run(until=10.0)
        assert sender.completed
        assert backup.bytes_scheduled == 0
        assert conn.initial_subflow.bytes_scheduled > 0

    def test_backup_takes_over_when_regular_dies(self):
        rig = build_dual_homed_rig(rate_mbps=2.0, expected_bytes=1_000_000)
        sender, conn = rig.connect_bulk(1_000_000, close_when_done=False)
        rig.sim.run(until=0.5)
        backup = conn.create_subflow(
            rig.client_addresses[1],
            remote_address=rig.server_addresses[1],
            remote_port=SERVER_PORT,
            backup=True,
        )
        rig.sim.run(until=1.0)
        conn.remove_subflow(conn.initial_subflow, reset=True)
        rig.sim.run(until=20.0)
        assert sender.completed
        assert backup.bytes_scheduled > 0

    def test_set_backup_signals_peer(self):
        rig = build_dual_homed_rig()
        app, conn = rig.connect_recording()
        rig.sim.run(until=1.0)
        conn.set_backup(conn.initial_subflow, True)
        rig.sim.run(until=2.0)
        server_conn = rig.server_stack.connections[0]
        assert server_conn.subflows[0].backup is True

    def test_reinjection_after_subflow_removal(self):
        rig = build_dual_homed_rig(client_pm=FullMeshPathManager(), rate_mbps=2.0, expected_bytes=1_000_000)
        sender, conn = rig.connect_bulk(1_000_000)
        rig.sim.run(until=1.0)
        # Kill the initial subflow mid-transfer; the data it still had
        # outstanding must be rescheduled on the other path.
        conn.remove_subflow(conn.initial_subflow, reset=True)
        rig.sim.run(until=40.0)
        assert sender.completed
        assert rig.server_apps[0].received_bytes == 1_000_000


class TestKernelPathManagers:
    def test_passive_keeps_single_subflow(self):
        rig = build_dual_homed_rig(client_pm=PassivePathManager())
        app, conn = rig.connect_recording()
        rig.sim.run(until=2.0)
        assert len(conn.subflows) == 1

    def test_fullmesh_creates_all_pairs(self):
        rig = build_dual_homed_rig(client_pm=FullMeshPathManager())
        app, conn = rig.connect_recording()
        rig.sim.run(until=2.0)
        pairs = {(str(f.socket.local_address), str(f.socket.remote_address)) for f in conn.subflows}
        assert len(conn.subflows) == 4
        assert len(pairs) == 4

    def test_fullmesh_reacts_to_interface_up(self):
        rig = build_dual_homed_rig(client_pm=FullMeshPathManager())
        rig.scenario.client.interface("if1").set_down()
        app, conn = rig.connect_recording()
        rig.sim.run(until=1.0)
        before = len([f for f in conn.subflows if not f.is_closed])
        rig.scenario.client.interface("if1").set_up()
        rig.sim.run(until=3.0)
        after = len([f for f in conn.subflows if not f.is_closed])
        assert after > before

    def test_fullmesh_removes_subflows_on_interface_down(self):
        rig = build_dual_homed_rig(client_pm=FullMeshPathManager())
        app, conn = rig.connect_recording()
        rig.sim.run(until=1.0)
        rig.scenario.client.interface("if1").set_down()
        rig.sim.run(until=2.0)
        alive_on_if1 = [
            f for f in conn.subflows
            if not f.is_closed and f.socket.local_address == rig.client_addresses[1]
        ]
        assert alive_on_if1 == []

    def test_ndiffports_opens_n_subflows_same_addresses(self):
        rig = build_dual_homed_rig(client_pm=NdiffportsPathManager(subflow_count=4))
        app, conn = rig.connect_recording()
        rig.sim.run(until=2.0)
        assert len(conn.active_subflows) == 4
        addresses = {(str(f.socket.local_address), str(f.socket.remote_address)) for f in conn.active_subflows}
        assert len(addresses) == 1
        ports = {f.socket.local_port for f in conn.active_subflows}
        assert len(ports) == 4

    def test_ndiffports_ignores_server_side(self):
        rig = build_dual_homed_rig(client_pm=NdiffportsPathManager(subflow_count=3))
        app, conn = rig.connect_recording()
        rig.sim.run(until=2.0)
        server_conn = rig.server_stack.connections[0]
        assert len(server_conn.subflows) == len(conn.active_subflows)

    def test_ndiffports_validation(self):
        with pytest.raises(ValueError):
            NdiffportsPathManager(subflow_count=0)


class TestStackBehaviour:
    def test_listen_twice_rejected(self):
        rig = build_dual_homed_rig()
        with pytest.raises(ValueError):
            rig.server_stack.listen(SERVER_PORT, RecordingApp)

    def test_invalid_listen_port_rejected(self):
        rig = build_dual_homed_rig()
        with pytest.raises(ValueError):
            rig.server_stack.listen(0, RecordingApp)

    def test_unknown_segment_triggers_reset(self):
        from repro.net.packet import Segment, TCPFlags

        rig = build_dual_homed_rig()
        rogue = Segment(
            src=rig.client_addresses[0], dst=rig.server_addresses[0],
            sport=12345, dport=SERVER_PORT, flags=TCPFlags.ACK, payload_len=10,
        )
        rig.scenario.client.send(rogue)
        rig.sim.run(until=1.0)
        assert rig.server_stack.resets_sent >= 1

    def test_ephemeral_ports_unique(self):
        rig = build_dual_homed_rig()
        ports = {rig.client_stack.allocate_port() for _ in range(200)}
        assert len(ports) == 200

    def test_multiple_concurrent_connections(self):
        rig = build_dual_homed_rig(expected_bytes=50_000)
        senders = []
        for _ in range(5):
            sender, _conn = rig.connect_bulk(50_000)
            senders.append(sender)
        rig.sim.run(until=20.0)
        assert all(sender.completed for sender in senders)
        assert len(rig.server_apps) == 5
