"""Tests for the applications, analysis helpers, topology builder and the
scaled-down experiment harness."""

import pytest

from tests.helpers import SERVER_PORT, build_dual_homed_rig
from repro.analysis.cdf import Cdf
from repro.analysis.report import format_cdf_table, format_table
from repro.analysis.stats import summarize
from repro.analysis.trace import extract_sequence_trace, syn_join_delays
from repro.apps.http import HttpClientDriver, HttpServerApp
from repro.apps.longlived import LongLivedApp
from repro.apps.streaming import StreamingSinkApp, StreamingSourceApp
from repro.experiments.runner import build_parser, main as runner_main
from repro.mptcp.path_manager import NdiffportsPathManager
from repro.mptcp.stack import MptcpStack
from repro.net.tracer import PacketTracer
from repro.netem.scenarios import build_lan
from repro.netem.topology import Topology
from repro.sim.engine import Simulator


class TestStreamingApps:
    def test_source_and_sink_block_accounting(self):
        sinks = []
        rig = build_dual_homed_rig(
            rate_mbps=10.0,
            server_listener_factory=lambda: StreamingSinkApp(block_bytes=64 * 1024),
        )
        source = StreamingSourceApp(block_bytes=64 * 1024, interval=1.0, block_count=5)
        rig.client_stack.connect(rig.server_addresses[0], SERVER_PORT, listener=source,
                                 local_address=rig.client_addresses[0])
        rig.sim.run(until=20.0)
        sink = rig.server_apps[0]
        assert source.blocks_sent == 5
        assert len(sink.blocks) == 5
        delays = sink.completion_times()
        assert all(0 < delay < 1.0 for delay in delays)
        assert sink.late_blocks() == 0

    def test_source_validation(self):
        with pytest.raises(ValueError):
            StreamingSourceApp(block_bytes=0)


class TestHttpApps:
    def test_sequential_requests(self):
        sim = Simulator(seed=5)
        scenario = build_lan(sim)
        servers = []
        server_stack = MptcpStack(sim, scenario.server)
        server_stack.listen(80, lambda: servers.append(HttpServerApp(object_size=100_000)) or servers[-1])
        client_stack = MptcpStack(sim, scenario.client, path_manager=NdiffportsPathManager(2))
        driver = HttpClientDriver(client_stack, scenario.server_address, 80,
                                  request_count=5, object_size=100_000)
        driver.start()
        sim.run(until=30.0)
        assert driver.done
        assert len(driver.completion_times()) == 5
        assert all(record.received_bytes >= 100_000 for record in driver.records)
        # HTTP/1.0: one connection per request, all torn down afterwards.
        assert client_stack.connections == []
        assert len(servers) == 5

    def test_driver_validation(self):
        sim = Simulator(seed=5)
        scenario = build_lan(sim)
        stack = MptcpStack(sim, scenario.client)
        with pytest.raises(ValueError):
            HttpClientDriver(stack, scenario.server_address, 80, request_count=0)


class TestLongLivedApp:
    def test_messages_tracked(self):
        rig = build_dual_homed_rig()
        app = LongLivedApp(message_bytes=100, message_interval=None)
        rig.client_stack.connect(rig.server_addresses[0], SERVER_PORT, listener=app,
                                 local_address=rig.client_addresses[0])
        rig.sim.run(until=1.0)
        app.send_message()
        rig.sim.run(until=2.0)
        assert app.delivered_messages == 1
        assert app.messages[0].delivery_time is not None


class TestAnalysis:
    def test_cdf_percentiles(self):
        cdf = Cdf(range(1, 101))
        assert cdf.median == pytest.approx(50, abs=1)
        assert cdf.percentile(0.95) == pytest.approx(95, abs=1)
        assert cdf.probability_below(10) == pytest.approx(0.10)
        with pytest.raises(ValueError):
            Cdf([]).percentile(0.5)
        with pytest.raises(ValueError):
            cdf.percentile(1.5)

    def test_summary(self):
        stats = summarize([1, 2, 3, 4, 5])
        assert stats.mean == 3
        assert stats.median == 3
        assert stats.count == 5
        with pytest.raises(ValueError):
            summarize([])

    def test_tables(self):
        table = format_table(["a", "b"], [[1, 2], [30, 40]])
        assert "30" in table and table.splitlines()[0].startswith("a")
        cdf_table = format_cdf_table({"x": Cdf([1, 2, 3])}, unit="s")
        assert "p50" in cdf_table and "mean" in cdf_table

    def test_trace_extraction_from_transfer(self):
        rig = build_dual_homed_rig(expected_bytes=100_000)
        tracer = rig.scenario.topology.add_tracer("capture")
        sender, conn = rig.connect_bulk(100_000)
        rig.sim.run(until=10.0)
        trace = extract_sequence_trace(tracer, source_address=rig.client_addresses[0])
        assert trace.points
        assert trace.highest_seq_before(rig.sim.now) == 100_000
        assert len(trace.subflow_labels()) >= 1

    def test_syn_join_delay_extraction(self):
        sim = Simulator(seed=6)
        scenario = build_lan(sim)
        tracer = scenario.topology.add_tracer("capture", ["lan"])
        servers = []
        server_stack = MptcpStack(sim, scenario.server)
        server_stack.listen(80, lambda: servers.append(HttpServerApp(object_size=50_000)) or servers[-1])
        client_stack = MptcpStack(sim, scenario.client, path_manager=NdiffportsPathManager(2))
        driver = HttpClientDriver(client_stack, scenario.server_address, 80, request_count=3, object_size=50_000)
        driver.start()
        sim.run(until=10.0)
        delays = syn_join_delays(tracer)
        assert len(delays) == 3
        assert all(0 < delay < 0.01 for delay in delays)


class TestTopologyBuilder:
    def test_duplicate_names_rejected(self, sim):
        topo = Topology(sim)
        topo.add_host("h1")
        with pytest.raises(ValueError):
            topo.add_host("h1")

    def test_lookup_helpers(self, sim):
        topo = Topology(sim)
        h1 = topo.add_host("h1")
        h2 = topo.add_host("h2")
        link = topo.add_link("l1", (h1, "eth0", "10.0.0.1"), (h2, "eth0", "10.0.0.2"))
        assert topo.host("h1") is h1
        assert topo.link("l1") is link
        tracer = topo.add_tracer("t")
        assert topo.tracer("t") is tracer
        assert isinstance(tracer, PacketTracer)


class TestExperimentsSmall:
    """Tiny-scale runs of every experiment: fast sanity that the harness works."""

    def test_fig2a_small(self):
        from repro.experiments import run_fig2a

        result = run_fig2a(seed=2, duration=4.0)
        assert result.switch_time is not None
        assert "Figure 2a" in result.format_report()

    def test_fig2b_small(self):
        from repro.experiments import run_fig2b

        result = run_fig2b(seed=2, loss_percents=(30.0,), block_count=10, repetitions=1)
        assert len(result.cdfs) == 2
        assert "Figure 2b" in result.format_report()

    def test_fig2c_small(self):
        from repro.experiments import run_fig2c

        result = run_fig2c(seeds=1, scale=0.02)
        assert len(result.cdf_refresh) == 1
        assert len(result.cdf_ndiffports) == 1
        assert "Figure 2c" in result.format_report()

    def test_fig3_small(self):
        from repro.experiments import run_fig3

        result = run_fig3(seed=2, request_count=20)
        assert result.mean_overhead > 0
        assert "Figure 3" in result.format_report()

    def test_longlived_small(self):
        from repro.experiments import run_longlived

        result = run_longlived(seed=2, duration=400.0, nat_timeout=40.0, message_interval=100.0)
        assert result.all_messages_delivered
        assert "NAT" in result.format_report()

    def test_runner_cli(self, capsys):
        parser = build_parser()
        args = parser.parse_args(["fig2a"])
        assert args.experiment == "fig2a"
        assert runner_main(["fig2a", "--seed", "3"]) == 0
        captured = capsys.readouterr()
        assert "Figure 2a" in captured.out

    def test_runner_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_runner_list_prints_every_registry(self, capsys):
        assert runner_main(["list"]) == 0
        out = capsys.readouterr().out
        for section in ("workloads", "scenarios:", "controllers:", "schedulers:", "probes:", "grids:"):
            assert section in out
        for name in ("http", "longlived", "asymmetric_loss", "userspace_fullmesh", "workloads"):
            assert name in out

    def test_runner_cell_runs_one_harness_point(self, capsys):
        assert runner_main([
            "cell",
            "--workload", "http",
            "--scenario", "dual_homed",
            "--controller", "fullmesh",
            "--horizon", "10",
            "--params", '{"request_count": 1, "object_size": 20000}',
        ]) == 0
        out = capsys.readouterr().out
        assert "cell http/dual_homed/lowest_rtt/fullmesh/seed1" in out
        assert "requests_completed = 1" in out
