"""Tests for addresses, four-tuples and segments."""

import pytest

from repro.net.addressing import FourTuple, IPAddress, ip
from repro.net.packet import HEADER_BYTES, Segment, TCPFlags
from repro.mptcp.options import DssOption, MpCapableOption


class TestIPAddress:
    def test_parse_and_str_roundtrip(self):
        assert str(IPAddress("10.1.2.3")) == "10.1.2.3"

    def test_int_roundtrip(self):
        addr = IPAddress("192.168.0.1")
        assert IPAddress(addr.value) == addr

    def test_copy_constructor(self):
        addr = IPAddress("10.0.0.1")
        assert IPAddress(addr) == addr

    def test_packed_roundtrip(self):
        addr = IPAddress("172.16.5.9")
        assert IPAddress.from_packed(addr.packed()) == addr

    def test_invalid_strings_rejected(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", ""):
            with pytest.raises(ValueError):
                IPAddress(bad)

    def test_invalid_int_rejected(self):
        with pytest.raises(ValueError):
            IPAddress(1 << 32)

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            IPAddress(1.5)

    def test_equality_with_string(self):
        assert IPAddress("10.0.0.1") == "10.0.0.1"
        assert IPAddress("10.0.0.1") != "10.0.0.2"

    def test_ordering(self):
        assert IPAddress("10.0.0.1") < IPAddress("10.0.0.2")

    def test_hashable(self):
        assert len({IPAddress("10.0.0.1"), IPAddress("10.0.0.1")}) == 1

    def test_same_subnet(self):
        assert IPAddress("10.0.0.1").same_subnet(IPAddress("10.0.0.200"), 24)
        assert not IPAddress("10.0.0.1").same_subnet(IPAddress("10.0.1.1"), 24)
        assert IPAddress("10.0.0.1").same_subnet(IPAddress("192.0.0.1"), 0)

    def test_ip_helper(self):
        assert ip("10.0.0.1") == IPAddress("10.0.0.1")


class TestFourTuple:
    def test_reversed(self):
        tup = FourTuple(ip("10.0.0.1"), 1000, ip("10.0.0.2"), 80)
        rev = tup.reversed()
        assert rev.src == tup.dst and rev.dport == tup.sport

    def test_packed_roundtrip(self):
        tup = FourTuple(ip("10.0.0.1"), 1000, ip("10.0.0.2"), 80)
        assert FourTuple.from_packed(tup.packed()) == tup

    def test_invalid_port_rejected(self):
        with pytest.raises(ValueError):
            FourTuple(ip("10.0.0.1"), 70000, ip("10.0.0.2"), 80)

    def test_ecmp_key_direction_independent(self):
        tup = FourTuple(ip("10.0.0.1"), 1000, ip("10.0.0.2"), 80)
        assert tup.ecmp_key() == tup.reversed().ecmp_key()

    def test_ecmp_key_differs_per_flow(self):
        a = FourTuple(ip("10.0.0.1"), 1000, ip("10.0.0.2"), 80)
        b = FourTuple(ip("10.0.0.1"), 1001, ip("10.0.0.2"), 80)
        assert a.ecmp_key() != b.ecmp_key()

    def test_str_format(self):
        tup = FourTuple(ip("10.0.0.1"), 1000, ip("10.0.0.2"), 80)
        assert str(tup) == "10.0.0.1:1000->10.0.0.2:80"


class TestSegment:
    def _segment(self, **kwargs):
        defaults = dict(src=ip("10.0.0.1"), dst=ip("10.0.0.2"), sport=1000, dport=80)
        defaults.update(kwargs)
        return Segment(**defaults)

    def test_flag_helpers(self):
        syn = self._segment(flags=TCPFlags.SYN)
        assert syn.is_syn and not syn.is_ack and not syn.is_rst and not syn.is_fin
        synack = self._segment(flags=TCPFlags.SYN | TCPFlags.ACK)
        assert synack.is_syn and synack.is_ack

    def test_pure_ack_detection(self):
        assert self._segment(flags=TCPFlags.ACK).is_pure_ack
        assert not self._segment(flags=TCPFlags.ACK, payload_len=10).is_pure_ack
        assert not self._segment(flags=TCPFlags.ACK | TCPFlags.FIN).is_pure_ack

    def test_size_includes_headers_and_options(self):
        plain = self._segment(payload_len=100)
        assert plain.size_bytes == HEADER_BYTES + 100
        with_option = self._segment(payload_len=100, options=(MpCapableOption(sender_key=1),))
        assert with_option.size_bytes == HEADER_BYTES + 100 + 12

    def test_end_seq_counts_syn_and_fin(self):
        assert self._segment(seq=10, flags=TCPFlags.SYN).end_seq == 11
        assert self._segment(seq=10, payload_len=5).end_seq == 15
        assert self._segment(seq=10, payload_len=5, flags=TCPFlags.FIN).end_seq == 16

    def test_find_option(self):
        dss = DssOption(data_ack=5)
        segment = self._segment(options=(MpCapableOption(sender_key=1), dss))
        assert segment.find_option(DssOption) is dss
        assert segment.has_option(MpCapableOption)
        assert segment.find_option(type(None)) is None

    def test_with_options_copy(self):
        segment = self._segment()
        copy = segment.with_options([DssOption(data_ack=1)])
        assert copy.has_option(DssOption)
        assert not segment.has_option(DssOption)
        assert copy.segment_id != segment.segment_id or copy is not segment

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            self._segment(payload_len=-1)

    def test_four_tuple_property(self):
        segment = self._segment()
        assert segment.four_tuple == FourTuple(ip("10.0.0.1"), 1000, ip("10.0.0.2"), 80)

    def test_flag_names(self):
        assert "SYN" in self._segment(flags=TCPFlags.SYN | TCPFlags.ACK).flag_names()
        assert self._segment().flag_names() == "-"
