"""Unit tests for the TCP building blocks (RTT, congestion, buffers, config)."""

import pytest

from repro.tcp.buffers import ReceiveReassembly, RetransmissionQueue, SentSegment
from repro.tcp.config import TcpConfig
from repro.tcp.congestion import (
    CouplingGroup,
    LiaCongestionControl,
    RenoCongestionControl,
    make_congestion_control,
)
from repro.tcp.options import SackOption
from repro.tcp.rtt import RttEstimator


class TestRttEstimator:
    def test_first_sample_initialises_srtt(self):
        est = RttEstimator()
        est.add_sample(0.1)
        assert est.srtt == pytest.approx(0.1)
        assert est.rttvar == pytest.approx(0.05)

    def test_rto_respects_minimum(self):
        est = RttEstimator(rto_min=0.2)
        est.add_sample(0.01)
        assert est.rto >= 0.2

    def test_rto_formula_above_minimum(self):
        est = RttEstimator(rto_min=0.2)
        est.add_sample(0.5)
        assert est.rto == pytest.approx(0.5 + 4 * 0.25, rel=0.01)

    def test_smoothing_converges(self):
        est = RttEstimator()
        for _ in range(100):
            est.add_sample(0.05)
        assert est.srtt == pytest.approx(0.05, rel=0.01)
        assert est.rto == pytest.approx(0.2, abs=0.02)

    def test_exponential_backoff_and_reset(self):
        est = RttEstimator()
        est.add_sample(0.05)
        base = est.rto
        est.on_timeout()
        est.on_timeout()
        assert est.rto == pytest.approx(base * 4)
        assert est.backoff_exponent == 2
        est.reset_backoff()
        assert est.rto == pytest.approx(base)

    def test_new_sample_clears_backoff(self):
        est = RttEstimator()
        est.add_sample(0.05)
        est.on_timeout()
        est.add_sample(0.05)
        assert est.backoff_exponent == 0

    def test_rto_capped_at_maximum(self):
        est = RttEstimator(rto_max=10.0)
        est.add_sample(0.05)
        for _ in range(20):
            est.on_timeout()
        assert est.rto == 10.0

    def test_initial_rto_before_samples(self):
        est = RttEstimator(rto_initial=1.0)
        assert est.rto == 1.0

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            RttEstimator().add_sample(-0.1)

    def test_min_rtt_tracking(self):
        est = RttEstimator()
        est.add_sample(0.2)
        est.add_sample(0.05)
        est.add_sample(0.3)
        assert est.min_rtt == pytest.approx(0.05)
        assert est.samples == 3

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            RttEstimator(rto_min=0.5, rto_max=0.1)


class TestCongestionControl:
    def test_initial_window(self):
        cc = RenoCongestionControl(1400, 10, 1 << 30)
        assert cc.cwnd == 14000
        assert cc.in_slow_start

    def test_slow_start_doubles_per_window(self):
        cc = RenoCongestionControl(1400, 10, 1 << 30)
        cc.on_ack(14000, 14000)
        assert cc.cwnd == 28000

    def test_congestion_avoidance_linear(self):
        cc = RenoCongestionControl(1400, 10, initial_ssthresh=14000)
        start = cc.cwnd
        cc.on_ack(start, start)
        assert start < cc.cwnd <= start + 1400 + 1

    def test_fast_retransmit_halves(self):
        cc = RenoCongestionControl(1400, 10, 1 << 30)
        cc.on_fast_retransmit(flight_size=20000, snd_nxt=50000)
        assert cc.ssthresh == 10000
        assert cc.cwnd == 10000
        assert cc.fast_recovery

    def test_fast_retransmit_floor(self):
        cc = RenoCongestionControl(1400, 10, 1 << 30)
        cc.on_fast_retransmit(flight_size=1000, snd_nxt=1000)
        assert cc.ssthresh == 2800

    def test_no_growth_during_recovery(self):
        cc = RenoCongestionControl(1400, 10, 1 << 30)
        cc.on_fast_retransmit(20000, 50000)
        window = cc.cwnd
        cc.on_ack(5000, 20000)
        assert cc.cwnd == window

    def test_recovery_exit(self):
        cc = RenoCongestionControl(1400, 10, 1 << 30)
        cc.on_fast_retransmit(20000, 50000)
        assert cc.on_recovery_ack(40000) is False
        assert cc.on_recovery_ack(50000) is True
        assert not cc.fast_recovery

    def test_rto_collapses_to_one_segment(self):
        cc = RenoCongestionControl(1400, 10, 1 << 30)
        cc.on_retransmission_timeout()
        assert cc.cwnd == 1400
        assert not cc.fast_recovery

    def test_factory(self):
        assert isinstance(make_congestion_control("reno", 1400, 10, 1 << 30), RenoCongestionControl)
        assert isinstance(make_congestion_control("lia", 1400, 10, 1 << 30), LiaCongestionControl)
        with pytest.raises(ValueError):
            make_congestion_control("cubic", 1400, 10, 1 << 30)

    def test_invalid_mss_rejected(self):
        with pytest.raises(ValueError):
            RenoCongestionControl(0, 10, 1)


class TestLiaCoupling:
    def build_pair(self):
        group = CouplingGroup()
        a = LiaCongestionControl(1400, 10, 14000, group)
        b = LiaCongestionControl(1400, 10, 14000, group)
        return group, a, b

    def test_group_membership(self):
        group, a, b = self.build_pair()
        assert group.members == [a, b]
        a.detach()
        assert group.members == [b]

    def test_total_cwnd(self):
        group, a, b = self.build_pair()
        assert group.total_cwnd() == a.cwnd + b.cwnd

    def test_alpha_defaults_to_one_without_rtt(self):
        group, a, b = self.build_pair()
        assert group.alpha() == 1.0

    def test_coupled_increase_not_more_aggressive_than_reno(self):
        group, a, b = self.build_pair()
        a.observe_rtt(0.02)
        b.observe_rtt(0.02)
        reno = RenoCongestionControl(1400, 10, 14000)
        before_a, before_reno = a.cwnd, reno.cwnd
        a.on_ack(14000, 14000)
        reno.on_ack(14000, 14000)
        assert a.cwnd - before_a <= reno.cwnd - before_reno

    def test_alpha_positive_with_asymmetric_rtts(self):
        group, a, b = self.build_pair()
        a.observe_rtt(0.01)
        b.observe_rtt(0.1)
        assert group.alpha() > 0.0


class TestRetransmissionQueue:
    def test_ack_upto_removes_covered_segments(self):
        queue = RetransmissionQueue()
        queue.push(SentSegment(0, 100, "a", 0.0, 0.0))
        queue.push(SentSegment(100, 100, "b", 0.0, 0.0))
        acked = queue.ack_upto(100)
        assert [s.metadata for s in acked] == ["a"]
        assert len(queue) == 1

    def test_partial_coverage_keeps_segment(self):
        queue = RetransmissionQueue()
        queue.push(SentSegment(0, 100, "a", 0.0, 0.0))
        assert queue.ack_upto(50) == []
        assert len(queue) == 1

    def test_outstanding_and_metadata(self):
        queue = RetransmissionQueue()
        queue.push(SentSegment(0, 100, "a", 0.0, 0.0))
        queue.push(SentSegment(100, 200, None, 0.0, 0.0))
        assert queue.outstanding_bytes() == 300
        assert queue.metadata_items() == ["a"]

    def test_head_and_clear(self):
        queue = RetransmissionQueue()
        assert queue.head() is None
        queue.push(SentSegment(0, 100, "a", 0.0, 0.0))
        assert queue.head().metadata == "a"
        dropped = queue.clear()
        assert len(dropped) == 1 and not queue


class TestReceiveReassembly:
    def test_in_order_advance(self):
        reasm = ReceiveReassembly(0)
        assert reasm.register(0, 100) == 100
        assert reasm.rcv_nxt == 100

    def test_out_of_order_then_fill(self):
        reasm = ReceiveReassembly(0)
        assert reasm.register(100, 100) == 100
        assert reasm.rcv_nxt == 0
        assert reasm.register(0, 100) == 100
        assert reasm.rcv_nxt == 200
        assert reasm.out_of_order_ranges == []

    def test_duplicate_detection(self):
        reasm = ReceiveReassembly(0)
        reasm.register(0, 100)
        assert reasm.register(0, 100) == 0
        assert reasm.duplicate_bytes == 100

    def test_overlapping_ranges_merge(self):
        reasm = ReceiveReassembly(0)
        reasm.register(100, 100)
        reasm.register(150, 100)
        assert reasm.out_of_order_ranges == [(100, 250)]

    def test_partial_overlap_with_delivered_data(self):
        reasm = ReceiveReassembly(0)
        reasm.register(0, 100)
        assert reasm.register(50, 100) == 50
        assert reasm.rcv_nxt == 150

    def test_multiple_holes(self):
        reasm = ReceiveReassembly(0)
        reasm.register(100, 50)
        reasm.register(200, 50)
        assert reasm.out_of_order_ranges == [(100, 150), (200, 250)]
        reasm.register(0, 100)
        assert reasm.rcv_nxt == 150
        reasm.register(150, 50)
        assert reasm.rcv_nxt == 250

    def test_sack_blocks_recency_order(self):
        reasm = ReceiveReassembly(0)
        reasm.register(100, 50)
        reasm.register(200, 50)
        blocks = reasm.sack_blocks()
        assert blocks[0] == (200, 250)
        assert blocks[1] == (100, 150)

    def test_sack_blocks_limit(self):
        reasm = ReceiveReassembly(0)
        for index in range(6):
            reasm.register(100 + index * 100, 50)
        assert len(reasm.sack_blocks(4)) == 4

    def test_zero_length_ignored(self):
        reasm = ReceiveReassembly(0)
        assert reasm.register(10, 0) == 0

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            ReceiveReassembly(0).register(0, -1)

    def test_missing_before(self):
        reasm = ReceiveReassembly(0)
        reasm.register(0, 100)
        assert reasm.missing_before(200)
        assert not reasm.missing_before(100)


class TestSackOption:
    def test_limits(self):
        with pytest.raises(ValueError):
            SackOption(blocks=tuple((i, i + 1) for i in range(5)))
        with pytest.raises(ValueError):
            SackOption(blocks=((10, 10),))

    def test_covers_and_highest(self):
        sack = SackOption(blocks=((100, 200), (300, 400)))
        assert sack.covers(100, 150)
        assert sack.covers(350, 400)
        assert not sack.covers(150, 250)
        assert sack.highest == 400
        assert sack.wire_length == 2 + 16


class TestTcpConfig:
    def test_defaults_valid(self):
        TcpConfig().validate()

    def test_overrides(self):
        config = TcpConfig().with_overrides(mss=9000, rto_min=0.05)
        assert config.mss == 9000
        assert config.rto_min == 0.05
        assert TcpConfig().mss == 1400

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            TcpConfig(mss=0).validate()
        with pytest.raises(ValueError):
            TcpConfig(rto_min=1.0, rto_max=0.5).validate()
        with pytest.raises(ValueError):
            TcpConfig(max_rto_doublings=0).validate()
        with pytest.raises(ValueError):
            TcpConfig(dupack_threshold=0).validate()
