"""Tests for the campaign regression gate: baselines, diffing, the CLI.

The acceptance surface of the diff subsystem: snapshots round-trip through
the committed-file format, ``diff(c, c)`` is empty at any worker count,
tolerances treat boundary equality as within, NaN/missing metrics and
disjoint grids degrade to reported (not crashed-on) differences, and the
``runner diff`` subcommand exits non-zero naming the drifted cell.
"""

import json
import math

import pytest

from repro.experiments import runner
from repro.sweep import (
    BASELINE_FORMAT_VERSION,
    DEFAULT_TOLERANCES,
    DIFF_FORMAT_VERSION,
    Baseline,
    BaselineCell,
    CampaignGrid,
    Tolerance,
    baseline_from_cache,
    diff_campaigns,
    format_diff_report,
    load_baseline,
    metric_family,
    run_campaign,
    write_baseline,
)
from repro.sweep.diff import diff_cell


def tiny_grid(**overrides) -> CampaignGrid:
    defaults = dict(
        name="tiny",
        campaign_seed=11,
        experiments=["bulk_transfer"],
        scenarios=["dual_homed"],
        schedulers=["lowest_rtt"],
        controllers=["passive", "fullmesh"],
        seeds=1,
        params={"transfer_bytes": 40_000, "horizon": 10.0},
    )
    defaults.update(overrides)
    return CampaignGrid(**defaults)


def synthetic_baseline(metrics_by_key: dict, name="synthetic", seed=1) -> Baseline:
    return Baseline(
        name=name,
        campaign_seed=seed,
        cells=[
            BaselineCell(
                key=key,
                spec={
                    "experiment": "bulk_transfer",
                    "scenario": key.split("/")[1],
                    "scheduler": "lowest_rtt",
                    "controller": "passive",
                    "seed_index": 0,
                    "params": {},
                },
                config_hash=f"hash-{key}",
                metrics=metrics,
            )
            for key, metrics in metrics_by_key.items()
        ],
    )


KEY_A = "bulk_transfer/dual_homed/lowest_rtt/passive/seed0"
KEY_B = "bulk_transfer/natted/lowest_rtt/passive/seed0"
KEY_C = "bulk_transfer/lan/lowest_rtt/passive/seed0"


class TestMetricFamilies:
    def test_family_classification(self):
        assert metric_family("goodput_mbps") == "goodput"
        assert metric_family("trace_data_bytes") == "bytes"
        assert metric_family("bytes_delivered") == "bytes"
        assert metric_family("app_latency_mean") == "latency"
        assert metric_family("completion_time") == "latency"
        assert metric_family("block_delay_mean") == "latency"
        assert metric_family("events_processed") == "events"
        assert metric_family("trace_packets") == "events"
        assert metric_family("subflows_created") == "counts"
        assert metric_family("messages_delivered") == "counts"
        assert metric_family("connections_initiated") == "counts"
        # Every count-like metric a registered workload emits is exact.
        assert metric_family("requests_started") == "counts"
        assert metric_family("late_blocks") == "counts"
        assert metric_family("blocks_delivered") == "counts"
        assert metric_family("app_samples") == "counts"

    def test_every_family_has_a_default_tolerance(self):
        for metric in ("goodput_mbps", "completion_time", "trace_data_bytes",
                       "events_processed", "subflows_used", "mystery_metric"):
            assert metric_family(metric) in DEFAULT_TOLERANCES


class TestTolerance:
    def test_boundary_equality_is_within(self):
        # abs delta exactly equal to abs tolerance: inclusive.
        assert Tolerance(rel=0.0, abs=0.5).within(1.0, 1.5)
        assert not Tolerance(rel=0.0, abs=0.5).within(1.0, 1.5000001)
        # rel delta exactly equal to rel tolerance: inclusive (isclose
        # measures against the larger magnitude).
        assert Tolerance(rel=0.1, abs=0.0).within(90.0, 100.0)
        assert not Tolerance(rel=0.1, abs=0.0).within(89.0, 100.0)

    def test_exact_tolerance_means_equality(self):
        tolerance = Tolerance()
        assert tolerance.within(3.0, 3.0)
        assert not tolerance.within(3.0, 3.0000001)

    def test_both_nan_is_within(self):
        assert Tolerance().within(math.nan, math.nan)
        assert not Tolerance(rel=1.0, abs=1.0).within(math.nan, 1.0)


class TestCellDiff:
    def diff(self, left, right, tolerances=None):
        return diff_cell(
            key=KEY_A,
            spec={"scenario": "dual_homed"},
            left_metrics=left,
            right_metrics=right,
            tolerances=tolerances if tolerances is not None else DEFAULT_TOLERANCES,
        )

    def test_identical_metrics_produce_no_deltas(self):
        metrics = {"goodput_mbps": 1.5, "trace_digest": "abc", "subflow_bytes": {"1": 2}}
        assert self.diff(metrics, dict(metrics)).identical

    def test_within_tolerance_is_changed_but_not_gating(self):
        cell = self.diff({"goodput_mbps": 100.0}, {"goodput_mbps": 101.0})
        assert not cell.identical
        assert not cell.out_of_tolerance
        (delta,) = cell.deltas
        assert delta.within and delta.gating

    def test_out_of_tolerance_numeric_drift(self):
        cell = self.diff({"goodput_mbps": 100.0}, {"goodput_mbps": 50.0})
        (delta,) = cell.out_of_tolerance
        assert delta.metric == "goodput_mbps"
        assert delta.rel_delta == pytest.approx(0.5)
        assert delta.abs_delta == pytest.approx(50.0)

    def test_counts_are_exact(self):
        cell = self.diff({"subflows_created": 4}, {"subflows_created": 5})
        assert cell.out_of_tolerance

    def test_missing_metric_on_either_side_is_gating(self):
        for left, right in (
            ({"goodput_mbps": 1.0}, {}),
            ({}, {"goodput_mbps": 1.0}),
            ({"goodput_mbps": None}, {"goodput_mbps": 1.0}),
        ):
            cell = self.diff(left, right)
            assert cell.out_of_tolerance, (left, right)

    def test_both_none_is_identical(self):
        assert self.diff({"app_latency_mean": None}, {"app_latency_mean": None}).identical

    def test_nan_pairs(self):
        both = self.diff({"goodput_mbps": math.nan}, {"goodput_mbps": math.nan})
        assert both.identical
        one = self.diff({"goodput_mbps": math.nan}, {"goodput_mbps": 1.0})
        assert one.out_of_tolerance

    def test_digest_change_is_informational(self):
        cell = self.diff({"trace_digest": "aaa"}, {"trace_digest": "bbb"})
        assert not cell.identical
        assert not cell.out_of_tolerance
        (delta,) = cell.deltas
        assert not delta.gating

    def test_structured_metric_change_is_informational(self):
        cell = self.diff({"subflow_bytes": {"1": 10}}, {"subflow_bytes": {"1": 20}})
        assert not cell.identical and not cell.out_of_tolerance

    def test_number_to_string_type_drift_is_gating(self):
        # A serialization regression turning a number into its string
        # must trip the gate even though "6.87" != 6.87 compares unequal.
        cell = self.diff({"goodput_mbps": 6.87}, {"goodput_mbps": "6.87"})
        assert cell.out_of_tolerance

    def test_number_to_bool_drift_is_gating_not_identical(self):
        # 1 == True in Python; the diff must not read that as identical.
        cell = self.diff({"subflows_used": 1}, {"subflows_used": True})
        assert not cell.identical
        assert cell.out_of_tolerance

    def test_per_metric_tolerance_overrides_family(self):
        tolerances = {**DEFAULT_TOLERANCES, "goodput_mbps": Tolerance(rel=0.9)}
        cell = self.diff({"goodput_mbps": 100.0}, {"goodput_mbps": 20.0}, tolerances)
        assert not cell.out_of_tolerance


class TestDisjointAndPartialGrids:
    def test_disjoint_grids_match_nothing_and_fail_the_gate(self):
        left = synthetic_baseline({KEY_A: {"goodput_mbps": 1.0}})
        right = synthetic_baseline({KEY_B: {"goodput_mbps": 1.0}})
        diff = diff_campaigns(left, right)
        assert diff.matched == []
        assert diff.left_only == [KEY_A]
        assert diff.right_only == [KEY_B]
        assert not diff.gate_ok and not diff.identical
        report = format_diff_report(diff)
        assert KEY_A in report and KEY_B in report

    def test_intersection_is_compared_and_extras_reported(self):
        left = synthetic_baseline({KEY_A: {"goodput_mbps": 1.0}, KEY_B: {"goodput_mbps": 2.0}})
        right = synthetic_baseline({KEY_B: {"goodput_mbps": 2.0}, KEY_C: {"goodput_mbps": 3.0}})
        diff = diff_campaigns(left, right)
        assert [cell.key for cell in diff.matched] == [KEY_B]
        assert diff.matched[0].identical
        assert diff.left_only == [KEY_A] and diff.right_only == [KEY_C]
        assert not diff.gate_ok  # misaligned grids are never a clean gate

    def test_config_mismatch_fails_the_gate_even_with_identical_metrics(self):
        # Same grid key, different config hash (changed params/seed): the
        # two sides ran different experiments under the same name, so the
        # gate must fail even though the metrics happen to match.
        left = synthetic_baseline({KEY_A: {"goodput_mbps": 1.0}})
        right = synthetic_baseline({KEY_A: {"goodput_mbps": 1.0}})
        object.__setattr__(right.cells[0], "config_hash", "other-hash")
        diff = diff_campaigns(left, right)
        assert [cell.key for cell in diff.config_mismatched_cells] == [KEY_A]
        assert not diff.matched[0].out_of_tolerance
        assert not diff.gate_ok and not diff.identical
        assert json.loads(diff.to_json())["summary"]["config_mismatched"] == [KEY_A]
        assert "config-mismatched" in format_diff_report(diff)


class TestSelfDiff:
    def test_self_diff_is_empty_at_any_worker_count(self, tmp_path):
        """diff(c, c) is empty — serial, parallel, cached, or snapshotted."""
        grid = tiny_grid()
        serial = run_campaign(grid, workers=1, cache_dir=str(tmp_path / "cache"))
        parallel = run_campaign(grid, workers=2, cache_dir=str(tmp_path / "cache"))
        snapshot = write_baseline(serial, str(tmp_path / "base.json"))
        reloaded = load_baseline(str(tmp_path / "base.json"))
        cached = baseline_from_cache(grid, str(tmp_path / "cache"))
        for left in (serial, parallel, snapshot, reloaded, cached):
            for right in (serial, parallel, reloaded, cached):
                diff = diff_campaigns(left, right)
                assert diff.identical and diff.gate_ok
        # The machine JSON of an empty diff is canonical and parseable.
        payload = json.loads(diff_campaigns(serial, serial).to_json())
        assert payload["diff_format_version"] == DIFF_FORMAT_VERSION
        assert payload["summary"]["gate_ok"] is True
        assert payload["cells"] == []


class TestBaselineFormat:
    def test_round_trip_preserves_cells(self, tmp_path):
        result = run_campaign(tiny_grid(), workers=1)
        path = str(tmp_path / "baseline.json")
        written = write_baseline(result, path)
        loaded = load_baseline(path)
        assert loaded.name == written.name == "tiny"
        assert loaded.campaign_seed == 11
        assert [cell.key for cell in loaded.cells] == [cell.key for cell in written.cells]
        assert loaded.cells[0].metrics == written.cells[0].metrics
        # Key order in the file is sorted, regardless of grid order.
        assert [cell.key for cell in loaded.cells] == sorted(
            cell.key for cell in loaded.cells
        )

    def test_written_file_is_deterministic(self, tmp_path):
        result = run_campaign(tiny_grid(), workers=1)
        write_baseline(result, str(tmp_path / "a.json"))
        write_baseline(result, str(tmp_path / "b.json"))
        assert (tmp_path / "a.json").read_bytes() == (tmp_path / "b.json").read_bytes()

    def test_unsupported_version_is_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "baseline_format_version": BASELINE_FORMAT_VERSION + 1,
            "name": "x", "campaign_seed": 1, "cells": [],
        }))
        with pytest.raises(ValueError, match="baseline format version"):
            load_baseline(str(path))

    def test_duplicate_cell_keys_are_rejected(self):
        cell = BaselineCell(key=KEY_A, spec={}, config_hash="h", metrics={})
        with pytest.raises(ValueError, match="duplicate"):
            Baseline(name="x", campaign_seed=1, cells=[cell, cell])

    def test_cache_loading_requires_every_cell(self, tmp_path):
        grid = tiny_grid()
        run_campaign(grid, workers=1, cache_dir=str(tmp_path))
        bigger = tiny_grid(scenarios=["dual_homed", "asymmetric_loss"])
        with pytest.raises(ValueError, match="missing 2 of 4"):
            baseline_from_cache(bigger, str(tmp_path))

    def test_diff_rejects_unknown_campaign_shapes(self):
        with pytest.raises(TypeError, match="cannot diff"):
            diff_campaigns([1, 2, 3], synthetic_baseline({}))


class TestDeltaStats:
    def make_diff(self):
        left = synthetic_baseline({
            KEY_A: {"goodput_mbps": 100.0, "completion_time": 1.0},
            KEY_B: {"goodput_mbps": 100.0, "completion_time": 1.0},
        })
        right = synthetic_baseline({
            KEY_A: {"goodput_mbps": 50.0, "completion_time": 1.0},
            KEY_B: {"goodput_mbps": 100.0, "completion_time": 1.02},
        })
        return diff_campaigns(left, right)

    def test_worst_cell_deltas_rank_by_relative_drift(self):
        from repro.analysis.deltas import worst_cell_deltas

        ranked = worst_cell_deltas(self.make_diff().matched)
        assert ranked[0][0] == KEY_A and ranked[0][1] == "goodput_mbps"
        assert ranked[0][2] == pytest.approx(0.5)
        assert ranked[1][0] == KEY_B

    def test_summarize_drift_by_axis(self):
        from repro.analysis.deltas import summarize_drift_by_axis

        summaries = summarize_drift_by_axis(self.make_diff().matched, by=("scenario",))
        assert summaries[("dual_homed",)].maximum == pytest.approx(0.5)
        assert summaries[("natted",)].count == 1

    def test_out_of_tolerance_counts_by_axis(self):
        from repro.analysis.deltas import out_of_tolerance_counts_by_axis

        counts = out_of_tolerance_counts_by_axis(self.make_diff().matched, by=("scenario",))
        assert counts[("dual_homed",)] == 1
        assert counts[("natted",)] == 0  # 2% completion_time drift is within 5%

    def test_missing_metric_outranks_small_numeric_drift_in_same_cell(self):
        from repro.analysis.deltas import worst_cell_deltas

        # A vanished metric must rank inf even when the cell also has a
        # tiny finite delta that would otherwise bury it under a limit.
        left = synthetic_baseline({KEY_A: {"goodput_mbps": 100.0, "app_samples": 3}})
        right = synthetic_baseline({KEY_A: {"goodput_mbps": 100.1}})
        (row,) = worst_cell_deltas(diff_campaigns(left, right).matched)
        assert row == (KEY_A, "app_samples", math.inf)

    def test_no_finite_delta_cell_names_the_gating_metric(self):
        from repro.analysis.deltas import worst_cell_deltas

        # One informational change (sorts first) plus one gating missing
        # metric: the inf rank must be attributed to the gating one.
        left = synthetic_baseline({KEY_A: {"subflow_bytes": {"1": 1}, "trace_packets": 7}})
        right = synthetic_baseline({KEY_A: {"subflow_bytes": {"1": 2}}})
        (row,) = worst_cell_deltas(diff_campaigns(left, right).matched)
        assert row == (KEY_A, "trace_packets", math.inf)

    def test_unknown_axis_is_rejected(self):
        from repro.analysis.deltas import summarize_drift_by_axis

        with pytest.raises(ValueError, match="unknown grouping axis"):
            summarize_drift_by_axis([], by=("flavour",))


class TestRunnerRegressionGate:
    """The acceptance criterion: runner diff exits 0 clean, 1 on drift."""

    def run_quick_baseline(self, tmp_path, capsys):
        baseline_path = str(tmp_path / "quick.json")
        cache_dir = str(tmp_path / "cache")
        assert runner.main([
            "baseline", "--grid", "quick", "--cache-dir", cache_dir,
            "--out", baseline_path,
        ]) == 0
        capsys.readouterr()
        return baseline_path, cache_dir

    def test_clean_diff_exits_zero(self, tmp_path, capsys):
        baseline_path, cache_dir = self.run_quick_baseline(tmp_path, capsys)
        json_path = str(tmp_path / "diff.json")
        code = runner.main([
            "diff", "--baseline", baseline_path, "--grid", "quick",
            "--cache-dir", cache_dir, "--json", json_path,
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "no out-of-tolerance drift" in out
        payload = json.loads((tmp_path / "diff.json").read_text())
        assert payload["summary"]["gate_ok"] is True

    def test_perturbed_cached_cell_fails_and_is_named(self, tmp_path, capsys):
        baseline_path, cache_dir = self.run_quick_baseline(tmp_path, capsys)
        # Perturb one cached cell's goodput well beyond the 5% tolerance.
        import glob

        cell_path = sorted(glob.glob(f"{cache_dir}/*.json"))[0]
        entry = json.loads(open(cell_path).read())
        entry["result"]["goodput_mbps"] *= 2
        with open(cell_path, "w", encoding="utf-8") as handle:
            json.dump(entry, handle)
        perturbed_key = (
            f"{entry['spec']['experiment']}/{entry['spec']['scenario']}/"
            f"{entry['spec']['scheduler']}/{entry['spec']['controller']}/"
            f"seed{entry['spec']['seed_index']}"
        )

        json_path = str(tmp_path / "diff.json")
        code = runner.main([
            "diff", "--baseline", baseline_path, "--grid", "quick",
            "--cache-dir", cache_dir, "--from-cache", "--json", json_path,
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert perturbed_key in out
        assert "goodput_mbps" in out
        payload = json.loads((tmp_path / "diff.json").read_text())
        assert payload["summary"]["out_of_tolerance"] == [perturbed_key]

    def test_diff_defaults_grid_and_seed_to_the_snapshot(self, tmp_path, capsys):
        # `diff --baseline baselines/quick.json` alone must gate against
        # the quick grid at the snapshot's seed, not the 24-cell default.
        baseline_path, cache_dir = self.run_quick_baseline(tmp_path, capsys)
        code = runner.main([
            "diff", "--baseline", baseline_path, "--cache-dir", cache_dir,
            "--from-cache",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "4 identical" in out

    def test_baseline_requires_an_explicit_grid(self, tmp_path):
        with pytest.raises(SystemExit):
            runner.main(["baseline", "--out", str(tmp_path / "x.json")])

    def test_diff_of_two_snapshot_files(self, tmp_path, capsys):
        baseline_path, _ = self.run_quick_baseline(tmp_path, capsys)
        assert runner.main([
            "diff", "--baseline", baseline_path, "--candidate", baseline_path,
        ]) == 0
        assert "4 identical" in capsys.readouterr().out

    def test_from_cache_requires_cache_dir(self, tmp_path, capsys):
        baseline_path, _ = self.run_quick_baseline(tmp_path, capsys)
        with pytest.raises(SystemExit):
            runner.main(["diff", "--baseline", baseline_path, "--from-cache"])

    def test_candidate_conflicts_with_run_flags(self, tmp_path, capsys):
        baseline_path, cache_dir = self.run_quick_baseline(tmp_path, capsys)
        for extra in (["--grid", "quick"], ["--from-cache"],
                      ["--cache-dir", cache_dir], ["--seed", "2"]):
            with pytest.raises(SystemExit, match="conflicts"):
                runner.main(["diff", "--baseline", baseline_path,
                             "--candidate", baseline_path, *extra])


class TestCommittedQuickBaseline:
    """The repo's own gate: baselines/quick.json matches a fresh quick run."""

    def test_committed_baseline_is_reproduced_bit_for_bit(self):
        import os

        from repro.experiments.grids import quick_grid

        path = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                            "baselines", "quick.json")
        committed = load_baseline(path)
        fresh = run_campaign(quick_grid(), workers=1)
        diff = diff_campaigns(committed, fresh)
        assert diff.gate_ok, format_diff_report(diff)
        assert diff.identical, format_diff_report(diff)
