"""Property-based tests (hypothesis) for core data structures and codecs."""

from hypothesis import given, settings, strategies as st

from repro.analysis.cdf import Cdf
from repro.analysis.stats import summarize
from repro.core import codec
from repro.core.commands import CommandReply, CreateSubflowCommand, RemoveSubflowCommand, ReplyStatus
from repro.core.events import SubflowClosedEvent, SubflowEstablishedEvent, TimeoutEvent
from repro.net.addressing import FourTuple, IPAddress
from repro.tcp.buffers import ReceiveReassembly
from repro.tcp.rtt import RttEstimator

addresses = st.integers(min_value=0, max_value=0xFFFFFFFF).map(IPAddress)
ports = st.integers(min_value=0, max_value=0xFFFF)
tokens = st.integers(min_value=0, max_value=0xFFFFFFFF)
four_tuples = st.builds(FourTuple, addresses, ports, addresses, ports)


class TestReassemblyProperties:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=400), st.integers(min_value=1, max_value=60)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_rcv_nxt_matches_delivered_prefix(self, chunks):
        """rcv_nxt always equals the length of the contiguous received prefix,
        and total new bytes never exceed the distinct bytes offered."""
        reasm = ReceiveReassembly(0)
        covered = set()
        new_total = 0
        for start, length in chunks:
            new_total += reasm.register(start, length)
            covered.update(range(start, start + length))
        expected_prefix = 0
        while expected_prefix in covered:
            expected_prefix += 1
        assert reasm.rcv_nxt == expected_prefix
        assert new_total <= len(covered)
        # Out-of-order ranges never overlap and sit entirely above rcv_nxt.
        ranges = reasm.out_of_order_ranges
        for index, (start, end) in enumerate(ranges):
            assert start < end
            assert start >= reasm.rcv_nxt
            if index:
                assert start >= ranges[index - 1][1]

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=300), st.integers(min_value=1, max_value=40)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_duplicate_delivery_never_counted_twice(self, chunks):
        reasm = ReceiveReassembly(0)
        for start, length in chunks:
            reasm.register(start, length)
        before = reasm.rcv_nxt
        for start, length in chunks:
            assert reasm.register(start, length) == 0 or reasm.rcv_nxt > before


class TestRttProperties:
    @given(st.lists(st.floats(min_value=1e-4, max_value=2.0), min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_rto_bounds(self, samples):
        est = RttEstimator(rto_min=0.2, rto_max=120.0)
        for sample in samples:
            est.add_sample(sample)
        assert 0.2 <= est.rto <= 120.0
        assert est.srtt is not None
        assert min(samples) <= est.srtt <= max(samples) + 1e-9

    @given(st.integers(min_value=1, max_value=30))
    @settings(max_examples=50, deadline=None)
    def test_backoff_monotone_and_capped(self, timeouts):
        est = RttEstimator(rto_min=0.2, rto_max=60.0)
        est.add_sample(0.05)
        previous = est.rto
        for _ in range(timeouts):
            est.on_timeout()
            assert est.rto >= previous
            previous = est.rto
        assert est.rto <= 60.0


class TestCodecProperties:
    @given(st.floats(min_value=0, max_value=1e6), tokens, st.integers(0, 65535), st.floats(0, 120), st.integers(0, 20))
    @settings(max_examples=100, deadline=None)
    def test_timeout_event_roundtrip(self, time, token, subflow_id, rto, consecutive):
        event = TimeoutEvent(time, token, subflow_id, rto, consecutive)
        assert codec.decode_event(codec.encode_event(event)) == event

    @given(st.floats(min_value=0, max_value=1e6), tokens, st.integers(0, 65535), four_tuples, st.booleans())
    @settings(max_examples=100, deadline=None)
    def test_sub_estab_event_roundtrip(self, time, token, subflow_id, tup, backup):
        event = SubflowEstablishedEvent(time, token, subflow_id, tup, backup)
        assert codec.decode_event(codec.encode_event(event)) == event

    @given(st.floats(min_value=0, max_value=1e6), tokens, st.integers(0, 65535), four_tuples,
           st.integers(min_value=-200, max_value=200))
    @settings(max_examples=100, deadline=None)
    def test_sub_closed_event_roundtrip(self, time, token, subflow_id, tup, reason):
        event = SubflowClosedEvent(time, token, subflow_id, tup, reason)
        assert codec.decode_event(codec.encode_event(event)) == event

    @given(tokens, st.integers(1, 1 << 30), addresses, ports, addresses, ports, st.booleans())
    @settings(max_examples=100, deadline=None)
    def test_create_subflow_roundtrip(self, token, request_id, local, lport, remote, rport, backup):
        command = CreateSubflowCommand(request_id, token, local, lport, remote, rport, backup)
        assert codec.decode_command(codec.encode_command(command)) == command

    @given(tokens, st.integers(1, 1 << 30), st.integers(0, 65535), st.booleans())
    @settings(max_examples=100, deadline=None)
    def test_remove_subflow_roundtrip(self, token, request_id, subflow_id, reset):
        command = RemoveSubflowCommand(request_id, token, subflow_id, reset)
        assert codec.decode_command(codec.encode_command(command)) == command

    @given(
        st.integers(1, 1 << 30),
        st.dictionaries(
            st.text(min_size=1, max_size=12),
            st.one_of(
                st.integers(min_value=-(1 << 40), max_value=1 << 40),
                st.floats(allow_nan=False, allow_infinity=False, width=32),
                st.text(max_size=20),
                st.booleans(),
                st.none(),
            ),
            max_size=8,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_reply_payload_roundtrip(self, request_id, payload):
        reply = CommandReply(request_id, ReplyStatus.OK, payload)
        decoded = codec.decode_reply(codec.encode_reply(reply))
        assert decoded.request_id == request_id
        assert decoded.payload == payload


class TestFourTupleProperties:
    @given(four_tuples)
    @settings(max_examples=200, deadline=None)
    def test_packed_roundtrip(self, tup):
        assert FourTuple.from_packed(tup.packed()) == tup

    @given(four_tuples)
    @settings(max_examples=200, deadline=None)
    def test_ecmp_key_symmetric(self, tup):
        assert tup.ecmp_key() == tup.reversed().ecmp_key()


class TestAnalysisProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e5, allow_nan=False), min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_cdf_invariants(self, samples):
        cdf = Cdf(samples)
        assert cdf.minimum <= cdf.median <= cdf.maximum
        assert cdf.probability_below(cdf.maximum) == 1.0
        assert 0.0 <= cdf.probability_below(cdf.minimum) <= 1.0
        assert cdf.percentile(0.0) == cdf.minimum
        assert cdf.percentile(1.0) == cdf.maximum
        fractions = [point[1] for point in cdf.points()]
        assert fractions == sorted(fractions)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_summary_invariants(self, samples):
        stats = summarize(samples)
        tolerance = 1e-9 * max(1.0, abs(stats.maximum), abs(stats.minimum))
        assert stats.minimum <= stats.p25 <= stats.median <= stats.p75 <= stats.maximum
        assert stats.minimum - tolerance <= stats.mean <= stats.maximum + tolerance
        assert stats.count == len(samples)
        assert stats.stddev >= 0


# ----------------------------------------------------------------------
# scheduler properties
# ----------------------------------------------------------------------
from repro.mptcp.scheduler import (  # noqa: E402
    SCHEDULER_REGISTRY,
    available_schedulers,
    make_scheduler,
)


class _SchedFakeSocket:
    """Just enough socket surface for the schedulers."""

    def __init__(self, srtt, window, established):
        class _Rtt:
            pass

        self.rtt = _Rtt()
        self.rtt.srtt = srtt
        self._window = window
        self._established = established
        self.backup = False

    @property
    def is_established(self):
        return self._established

    @property
    def is_closed(self):
        return False

    def available_window(self):
        return self._window


class _SchedFakeFlow:
    def __init__(self, flow_id, srtt, window, backup, established):
        self.id = flow_id
        self.backup = backup
        self.socket = _SchedFakeSocket(srtt, window, established)
        self.is_usable = established
        self.is_established = established
        self.is_closed = False


flow_states = st.builds(
    lambda srtt, window, backup, established: (srtt, window, backup, established),
    st.one_of(st.none(), st.floats(min_value=1e-4, max_value=2.0)),
    st.integers(min_value=0, max_value=100_000),
    st.booleans(),
    st.booleans(),
)
flow_sets = st.lists(flow_states, min_size=0, max_size=8).map(
    lambda states: [
        _SchedFakeFlow(index + 1, *state) for index, state in enumerate(states)
    ]
)


class TestSchedulerProperties:
    @given(st.sampled_from(sorted(SCHEDULER_REGISTRY)), flow_sets)
    @settings(max_examples=300, deadline=None)
    def test_selection_comes_from_eligible_set(self, name, flows):
        scheduler = make_scheduler(name)
        chosen = scheduler.select(flows, 1400)
        eligible = scheduler.eligible(flows)
        if chosen is None:
            assert eligible == []
        else:
            assert chosen in eligible

    @given(st.sampled_from(sorted(SCHEDULER_REGISTRY)), flow_sets)
    @settings(max_examples=300, deadline=None)
    def test_never_selects_unusable_or_windowless_subflow(self, name, flows):
        scheduler = make_scheduler(name)
        chosen = scheduler.select(flows, 1400)
        if chosen is not None:
            assert chosen.is_usable
            assert chosen.socket.available_window() > 0

    @given(flow_sets)
    @settings(max_examples=300, deadline=None)
    def test_backup_semantics(self, flows):
        """RFC 6824: backup subflows carry data only when no regular one can.

        Applies to every scheduler with the default eligibility rules; the
        redundant scheduler opts out of backup priority by design.
        """
        for name in ("lowest_rtt", "round_robin"):
            scheduler = make_scheduler(name)
            chosen = scheduler.select(flows, 1400)
            regular_available = any(
                flow.is_usable and not flow.backup and flow.socket.available_window() > 0
                for flow in flows
            )
            if chosen is not None and chosen.backup:
                assert not regular_available

    @given(st.lists(flow_sets, min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_round_robin_stable_under_churn(self, generations):
        """Arbitrary subflow churn never desynchronises the rotation cursor."""
        scheduler = make_scheduler("round_robin")
        for flows in generations:
            for _ in range(len(flows) + 1):
                chosen = scheduler.select(flows, 1400)
                eligible = scheduler.eligible(flows)
                if eligible:
                    assert chosen in eligible
                else:
                    assert chosen is None

    def test_registry_round_trips(self):
        assert available_schedulers() == sorted(SCHEDULER_REGISTRY)
        for name in available_schedulers():
            scheduler = make_scheduler(name)
            assert isinstance(scheduler, SCHEDULER_REGISTRY[name])
            assert scheduler.name == name
            # Case-insensitive lookup is part of the contract.
            assert type(make_scheduler(name.upper())) is type(scheduler)


# ----------------------------------------------------------------------
# event kernel vs. reference heap
# ----------------------------------------------------------------------
# The simulator's two-tier kernel (calendar wheel + spill heap) must be
# observationally identical to the flat heapq it replaced: events fire in
# (time, schedule-order) order, cancellation invalidates in place, compact()
# never changes what runs, and run(until=...) stops at the same point.  The
# delay strategy mixes arbitrary floats with exact bucket-width multiples so
# same-time collisions, bucket boundaries (2 ms), the wheel horizon (512 ms)
# and the spill heap are all exercised.

_kernel_delays = st.one_of(
    st.floats(min_value=0.0, max_value=1.5, allow_nan=False, allow_infinity=False),
    st.sampled_from([0.0, 0.001, 0.002, 0.004, 0.256, 0.510, 0.512, 0.514, 1.0]),
)


class TestEventKernelProperties:
    @given(st.lists(_kernel_delays, min_size=1, max_size=80))
    @settings(max_examples=120, deadline=None)
    def test_execution_order_matches_reference_heap(self, delays):
        """Pop order equals a heapq over (time, schedule-order) pairs."""
        from repro.sim import Simulator

        sim = Simulator(seed=1)
        order = []
        for index, delay in enumerate(delays):
            sim.schedule(delay, order.append, index)
        sim.run()
        reference = [index for _, index in sorted((d, i) for i, d in enumerate(delays))]
        assert order == reference
        assert sim.pending_events == 0
        assert sim.processed_events == len(delays)

    @given(st.lists(st.tuples(_kernel_delays, st.booleans()), min_size=1, max_size=60))
    @settings(max_examples=120, deadline=None)
    def test_cancellation_by_invalidation(self, items):
        """Cancelled events never fire; survivors keep the reference order."""
        from repro.sim import Simulator

        sim = Simulator(seed=1)
        order = []
        events = [
            sim.schedule(delay, order.append, index)
            for index, (delay, _) in enumerate(items)
        ]
        for event, (_, cancel) in zip(events, items):
            if cancel:
                event.cancel()
        live = [(delay, index) for index, (delay, cancel) in enumerate(items) if not cancel]
        assert sim.pending_events == len(live)
        sim.run()
        assert order == [index for _, index in sorted(live)]

    @given(st.lists(st.tuples(_kernel_delays, _kernel_delays), min_size=1, max_size=40))
    @settings(max_examples=120, deadline=None)
    def test_cancel_during_run_matches_reference(self, pairs):
        """A canceller event stops its target iff it fires strictly first.

        The target is scheduled before its canceller, so at equal times the
        target's lower sequence number wins — exactly the flat-heap rule.
        """
        from repro.sim import Simulator

        sim = Simulator(seed=1)
        fired = []
        for index, (target_delay, cancel_delay) in enumerate(pairs):
            target = sim.schedule(target_delay, fired.append, index)
            sim.schedule(cancel_delay, sim.cancel, target)
        sim.run()
        expected = [index for index, (t, c) in enumerate(pairs) if t <= c]
        assert sorted(fired) == expected

    @given(st.lists(st.tuples(_kernel_delays, st.booleans()), min_size=1, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_compact_equivalence(self, items):
        """compact() after cancellations never changes observable behaviour."""
        from repro.sim import Simulator

        def trace(do_compact):
            sim = Simulator(seed=1)
            order = []
            events = [
                sim.schedule(delay, order.append, index)
                for index, (delay, _) in enumerate(items)
            ]
            for event, (_, cancel) in zip(events, items):
                if cancel:
                    event.cancel()
            if do_compact:
                sim.compact()
            sim.run()
            return order, sim.now, sim.processed_events, sim.pending_events

        assert trace(True) == trace(False)

    @given(
        st.lists(_kernel_delays, min_size=1, max_size=60),
        _kernel_delays,
    )
    @settings(max_examples=120, deadline=None)
    def test_run_until_stop_matches_reference(self, delays, until):
        """run(until=...) executes exactly the events at time <= until."""
        from repro.sim import Simulator

        sim = Simulator(seed=1)
        order = []
        for index, delay in enumerate(delays):
            sim.schedule(delay, order.append, index)
        stopped_at = sim.run(until=until)
        ranked = sorted((d, i) for i, d in enumerate(delays))
        assert order == [index for delay, index in ranked if delay <= until]
        assert stopped_at == until
        assert sim.now == until
        sim.run()
        assert order == [index for _, index in ranked]

    @given(st.lists(st.tuples(_kernel_delays, st.one_of(st.none(), _kernel_delays)),
                    min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_nested_scheduling_matches_reference_simulation(self, pairs):
        """Events scheduled from inside callbacks follow the same rule.

        Mirrors the run against a literal heapq simulation that assigns
        sequence numbers in the same order the kernel does (one per
        schedule call, in call order).
        """
        import heapq
        import itertools

        from repro.sim import Simulator

        sim = Simulator(seed=1)
        order = []

        def fire(index, follow_delay):
            order.append(index)
            if follow_delay is not None:
                sim.schedule(follow_delay, fire, index + 1000, None)

        for index, (delay, follow) in enumerate(pairs):
            sim.schedule(delay, fire, index, follow)
        sim.run()

        sequence = itertools.count()
        heap = []
        for index, (delay, follow) in enumerate(pairs):
            heapq.heappush(heap, (delay, next(sequence), index, follow))
        reference = []
        while heap:
            time_, _, index, follow = heapq.heappop(heap)
            reference.append(index)
            if follow is not None:
                heapq.heappush(heap, (time_ + follow, next(sequence), index + 1000, None))
        assert order == reference
