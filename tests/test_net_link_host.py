"""Tests for links, interfaces, hosts and tracers."""

import pytest

from repro.net import Host, Link, PacketTracer
from repro.net.addressing import ip
from repro.net.packet import Segment, TCPFlags


def make_pair(sim, **link_kwargs):
    """Two hosts joined by one link; returns (a, b, link)."""
    a = Host(sim, "a")
    b = Host(sim, "b")
    ia = a.add_interface("eth0", "10.0.0.1")
    ib = b.add_interface("eth0", "10.0.0.2")
    defaults = dict(rate_bps=8_000_000, delay=0.01, queue_packets=10)
    defaults.update(link_kwargs)
    link = Link(sim, name="l", **defaults).connect(ia, ib)
    return a, b, link


class SinkStack:
    """Minimal stack recording received segments."""

    def __init__(self):
        self.segments = []

    def on_segment(self, segment, iface):
        self.segments.append((segment, iface))

    def on_local_address_up(self, iface):
        pass

    def on_local_address_down(self, iface):
        pass


def data_segment(payload=1000, src="10.0.0.1", dst="10.0.0.2"):
    return Segment(src=ip(src), dst=ip(dst), sport=1, dport=2, payload_len=payload, flags=TCPFlags.ACK)


class TestLink:
    def test_delivery_and_delay(self, sim):
        a, b, link = make_pair(sim)
        sink = SinkStack()
        b.install_stack(sink)
        segment = data_segment()
        a.send(segment)
        sim.run()
        assert len(sink.segments) == 1
        # serialisation (1040 bytes at 8 Mbps) + 10 ms propagation
        expected = (segment.size_bytes * 8 / 8_000_000) + 0.01
        assert sim.now == pytest.approx(expected, rel=1e-6)

    def test_serialisation_spacing(self, sim):
        a, b, link = make_pair(sim)
        sink = SinkStack()
        b.install_stack(sink)
        for _ in range(3):
            a.send(data_segment())
        sim.run()
        assert len(sink.segments) == 3

    def test_queue_overflow_drops(self, sim):
        a, b, link = make_pair(sim, queue_packets=2)
        sink = SinkStack()
        b.install_stack(sink)
        for _ in range(10):
            a.send(data_segment())
        sim.run()
        # 1 in service + 2 queued survive the burst
        assert len(sink.segments) == 3
        assert link.stats()["dropped_queue"] == 7

    def test_full_loss_drops_everything(self, sim):
        a, b, link = make_pair(sim, loss_rate=1.0)
        sink = SinkStack()
        b.install_stack(sink)
        for _ in range(5):
            a.send(data_segment())
        sim.run()
        assert sink.segments == []
        assert link.stats()["dropped_loss"] == 5

    def test_loss_rate_statistics(self, sim):
        a, b, link = make_pair(sim, loss_rate=0.3, queue_packets=10_000, rate_bps=1e9)
        sink = SinkStack()
        b.install_stack(sink)
        for _ in range(2000):
            a.send(data_segment(payload=10))
        sim.run()
        delivered = len(sink.segments)
        assert 0.62 < delivered / 2000 < 0.78

    def test_set_loss_rate_at_runtime(self, sim):
        a, b, link = make_pair(sim)
        link.set_loss_rate(0.5)
        assert link.loss_rate == 0.5
        with pytest.raises(ValueError):
            link.set_loss_rate(1.5)

    def test_mbps_constructor_units(self, sim):
        a = Host(sim, "x")
        b = Host(sim, "y")
        link = Link.mbps(sim, 5.0, 10.0, loss_percent=30.0)
        assert link.rate_bps == pytest.approx(5_000_000)
        assert link.delay == pytest.approx(0.010)
        assert link.loss_rate == pytest.approx(0.30)

    def test_invalid_parameters_rejected(self, sim):
        with pytest.raises(ValueError):
            Link(sim, rate_bps=0)
        with pytest.raises(ValueError):
            Link(sim, delay=-1)
        with pytest.raises(ValueError):
            Link(sim, queue_packets=0)

    def test_double_connect_rejected(self, sim):
        a, b, link = make_pair(sim)
        with pytest.raises(RuntimeError):
            link.connect(a.interface("eth0"), b.interface("eth0"))

    def test_peer_of(self, sim):
        a, b, link = make_pair(sim)
        assert link.peer_of(a.interface("eth0")) is b.interface("eth0")

    def test_duplex_directions_are_independent(self, sim):
        a, b, link = make_pair(sim, queue_packets=1)
        sink_a, sink_b = SinkStack(), SinkStack()
        a.install_stack(sink_a)
        b.install_stack(sink_b)
        a.send(data_segment())
        b.send(data_segment(src="10.0.0.2", dst="10.0.0.1"))
        sim.run()
        assert len(sink_a.segments) == 1
        assert len(sink_b.segments) == 1


class TestInterfaceAndHost:
    def test_interface_down_blocks_tx_and_rx(self, sim):
        a, b, link = make_pair(sim)
        sink = SinkStack()
        b.install_stack(sink)
        a.interface("eth0").set_down()
        assert a.send(data_segment()) is False
        sim.run()
        assert sink.segments == []

    def test_interface_down_notifies_stack(self, sim):
        a, b, _ = make_pair(sim)
        events = []

        class Watcher(SinkStack):
            def on_local_address_down(self, iface):
                events.append(("down", iface.name))

            def on_local_address_up(self, iface):
                events.append(("up", iface.name))

        a.install_stack(Watcher())
        a.interface("eth0").set_down()
        a.interface("eth0").set_up()
        assert events == [("down", "eth0"), ("up", "eth0")]

    def test_duplicate_interface_name_rejected(self, sim):
        a = Host(sim, "a")
        a.add_interface("eth0", "10.0.0.1")
        with pytest.raises(ValueError):
            a.add_interface("eth0", "10.0.0.2")

    def test_host_policy_routing_by_source(self, sim):
        host = Host(sim, "multi")
        host.add_interface("if0", "10.0.0.1")
        host.add_interface("if1", "10.1.0.1")
        chosen = host.route(ip("10.9.9.9"), source=ip("10.1.0.1"))
        assert chosen.name == "if1"

    def test_host_static_route(self, sim):
        host = Host(sim, "multi")
        host.add_interface("if0", "10.0.0.1")
        host.add_interface("if1", "10.1.0.1")
        host.add_route("10.9.9.9", "if1")
        assert host.route(ip("10.9.9.9")).name == "if1"

    def test_host_default_interface(self, sim):
        host = Host(sim, "multi")
        host.add_interface("if0", "10.0.0.1")
        host.add_interface("if1", "10.1.0.1")
        host.set_default_interface("if1")
        assert host.route(ip("8.8.8.8")).name == "if1"

    def test_route_skips_down_interfaces(self, sim):
        host = Host(sim, "multi")
        host.add_interface("if0", "10.0.0.1")
        host.add_interface("if1", "10.1.0.1")
        host.interface("if0").set_down()
        assert host.route(ip("8.8.8.8")).name == "if1"

    def test_route_returns_none_when_all_down(self, sim):
        host = Host(sim, "multi")
        host.add_interface("if0", "10.0.0.1")
        host.interface("if0").set_down()
        assert host.route(ip("8.8.8.8")) is None

    def test_host_drops_non_local_segments(self, sim):
        a, b, _ = make_pair(sim)
        sink = SinkStack()
        b.install_stack(sink)
        a.send(data_segment(dst="10.0.0.99"))
        sim.run()
        assert sink.segments == []
        assert b.dropped_not_local == 1

    def test_addresses_listing(self, sim):
        host = Host(sim, "multi")
        host.add_interface("if0", "10.0.0.1")
        host.add_interface("if1", "10.1.0.1")
        host.interface("if1").set_down()
        assert host.addresses() == [ip("10.0.0.1")]
        assert len(host.addresses(only_up=False)) == 2

    def test_unknown_route_target_rejected(self, sim):
        host = Host(sim, "h")
        host.add_interface("if0", "10.0.0.1")
        with pytest.raises(KeyError):
            host.add_route("10.0.0.2", "nope")
        with pytest.raises(KeyError):
            host.set_default_interface("nope")


class TestTracer:
    def test_records_deliveries(self, sim):
        a, b, link = make_pair(sim)
        b.install_stack(SinkStack())
        tracer = PacketTracer().attach(link)
        a.send(data_segment())
        sim.run()
        assert len(tracer) == 1
        record = tracer.records[0]
        assert record.from_iface == "a.eth0"
        assert record.to_iface == "b.eth0"

    def test_filter_predicate(self, sim):
        a, b, link = make_pair(sim)
        b.install_stack(SinkStack())
        tracer = PacketTracer(keep=lambda seg: seg.payload_len > 500).attach(link)
        a.send(data_segment(payload=100))
        a.send(data_segment(payload=1000))
        sim.run()
        assert len(tracer) == 1

    def test_helpers(self, sim):
        a, b, link = make_pair(sim)
        b.install_stack(SinkStack())
        tracer = PacketTracer().attach(link)
        a.send(Segment(src=ip("10.0.0.1"), dst=ip("10.0.0.2"), sport=1, dport=2, flags=TCPFlags.SYN))
        a.send(data_segment())
        sim.run()
        assert len(tracer.syn_records()) == 1
        assert len(tracer.data_records()) == 1
        assert len(tracer.records_with_flag(TCPFlags.SYN)) == 1
        tracer.clear()
        assert len(tracer) == 0
