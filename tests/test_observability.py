"""Tests for the observability layer (``repro.obs``) and its wiring.

Covers the event log substrate (filtering, bounding, coverage), the
byte-stable exports, the opt-in ``events`` probe (including the
acceptance-criterion strip-before-fallback ordering on a faulted
downgrade cell and the silence guarantee when tracing is off), stack
counters, campaign telemetry, the probe-timing surface across every
registered probe, and the ``PacketTracer.records`` aliasing regression.
"""

import json

import pytest

from repro.experiments.runner import build_parser
from repro.obs import (
    CATEGORIES,
    DEFAULT_LIMIT,
    CellTelemetry,
    CounterRegistry,
    EventLog,
    chrome_trace,
    events_jsonl,
    format_telemetry_report,
    stack_counters,
    summarize_telemetry,
)
from repro.sweep import CampaignGrid, run_campaign
from repro.workloads import HarnessSpec, run_workload
from repro.workloads.probes import DEFAULT_PROBES, PROBES

EVENT_METRICS = {"events_recorded", "events_dropped", "event_counts", "event_counters"}

#: The counter catalogue ``MptcpStack.counters()`` publishes.
STACK_COUNTER_KEYS = (
    "connections_accepted",
    "connections_fallen_back",
    "connections_initiated",
    "resets_sent",
    "retransmissions",
    "segments_delivered",
    "segments_received",
    "segments_sent",
    "segments_unmatched",
)


def downgrade_spec(**params) -> HarnessSpec:
    """The acceptance cell: MP_CAPABLE stripped at t=0, downgrade follows."""
    merged = {"transfer_bytes": 60_000, **params}
    return HarnessSpec(
        workload="bulk_transfer",
        scenario="faulted_downgrade",
        controller="fullmesh",
        scheduler="lowest_rtt",
        seed=1,
        horizon=15.0,
        params=merged,
    )


@pytest.fixture(scope="module")
def traced_run():
    return run_workload(downgrade_spec(event_log=True))


@pytest.fixture(scope="module")
def traced_rerun():
    return run_workload(downgrade_spec(event_log=True))


@pytest.fixture(scope="module")
def untraced_run():
    return run_workload(downgrade_spec())


# ----------------------------------------------------------------------
# EventLog substrate
# ----------------------------------------------------------------------
class TestEventLog:
    def test_records_in_emit_order_with_monotonic_seq(self):
        log = EventLog()
        log.emit(0.5, "timer", "fire", "rto")
        log.emit(0.5, "fault", "strip_option", "path0", {"option": "MpCapableOption"})
        log.emit(1.0, "timer", "fire", "rto")
        assert [event.seq for event in log.events] == [0, 1, 2]
        assert [event.name for event in log.events] == ["fire", "strip_option", "fire"]
        assert log.events[1].detail == {"option": "MpCapableOption"}

    def test_category_filtering_and_channels(self):
        log = EventLog(categories=["fault", "timer"])
        assert log.categories == ("fault", "timer")
        assert log.enabled("fault") and not log.enabled("scheduler")
        assert log.channel("timer") is log
        assert log.channel("scheduler") is None

    def test_all_categories_enabled_by_default(self):
        log = EventLog()
        assert log.categories == CATEGORIES
        assert all(log.channel(cat) is log for cat in CATEGORIES)

    def test_unknown_category_is_rejected(self):
        with pytest.raises(ValueError, match="unknown event categories"):
            EventLog(categories=["timer", "bogus"])

    def test_nonpositive_limit_is_rejected(self):
        with pytest.raises(ValueError, match="must be positive"):
            EventLog(limit=0)

    def test_bounding_counts_drops_instead_of_growing(self):
        log = EventLog(limit=3)
        for i in range(5):
            log.emit(float(i), "timer", "fire", "t")
        assert len(log) == 3
        assert log.dropped == 2
        assert [event.seq for event in log.events] == [0, 1, 2]
        assert log.limit == 3

    def test_default_limit_is_documented_constant(self):
        assert EventLog().limit == DEFAULT_LIMIT

    def test_counts_by_category_is_sorted_and_zero_free(self):
        log = EventLog()
        log.emit(0.0, "timer", "fire", "t")
        log.emit(0.0, "fault", "strip_option", "p")
        log.emit(0.1, "timer", "fire", "t")
        counts = log.counts_by_category()
        assert counts == {"fault": 1, "timer": 2}
        assert list(counts) == ["fault", "timer"]

    def test_coverage_signature_is_sorted_distinct_pairs(self):
        log = EventLog()
        log.emit(0.0, "timer", "fire", "a")
        log.emit(0.1, "timer", "fire", "b")
        log.emit(0.2, "fault", "drop_segment", "p")
        assert log.coverage_signature() == (
            ("fault", "drop_segment"),
            ("timer", "fire"),
        )

    def test_events_property_is_a_snapshot(self):
        log = EventLog()
        log.emit(0.0, "timer", "fire", "t")
        snapshot = log.events
        log.emit(0.1, "timer", "fire", "t")
        assert len(snapshot) == 1
        assert len(log.events) == 2


class TestCounterRegistry:
    def test_record_merge_adds_per_scope(self):
        registry = CounterRegistry()
        registry.record("client", {"segments_sent": 3, "retransmissions": 1})
        registry.record("client", {"segments_sent": 2})
        registry.record("server", {"segments_sent": 5})
        assert registry.scope("client") == {"segments_sent": 5, "retransmissions": 1}
        assert registry.scope("unknown") == {}

    def test_snapshot_is_fully_sorted(self):
        registry = CounterRegistry()
        registry.record("z", {"b": 1, "a": 2})
        registry.record("a", {"x": 1})
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a", "z"]
        assert list(snapshot["z"]) == ["a", "b"]

    def test_scope_returns_a_copy(self):
        registry = CounterRegistry()
        registry.record("client", {"segments_sent": 1})
        registry.scope("client")["segments_sent"] = 99
        assert registry.scope("client") == {"segments_sent": 1}


# ----------------------------------------------------------------------
# Exports
# ----------------------------------------------------------------------
class TestExports:
    def small_log(self) -> EventLog:
        log = EventLog(limit=2)
        log.emit(0.0, "fault", "strip_option", "path0", {"option": "MpCapableOption"})
        log.emit(0.25, "fallback", "fallback", "client/conn-0000002a", {"reason": "x"})
        log.emit(0.5, "timer", "fire", "t")  # dropped: past the limit
        return log

    def test_jsonl_schema_and_summary_line(self):
        lines = events_jsonl(self.small_log()).splitlines()
        assert len(lines) == 3
        first = json.loads(lines[0])
        assert first["category"] == "fault" and first["seq"] == 0
        assert first["detail"] == {"option": "MpCapableOption"}
        summary = json.loads(lines[-1])["summary"]
        assert summary["recorded"] == 2
        assert summary["dropped"] == 1
        assert summary["counts"] == {"fallback": 1, "fault": 1}

    def test_jsonl_ends_with_newline(self):
        assert events_jsonl(self.small_log()).endswith("\n")

    def test_chrome_trace_is_valid_and_names_subject_rows(self):
        payload = json.loads(chrome_trace(self.small_log()))
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        names = {
            entry["args"]["name"]
            for entry in events
            if entry["ph"] == "M" and entry["name"] == "thread_name"
        }
        assert names == {"path0", "client/conn-0000002a"}
        instants = [entry for entry in events if entry["ph"] == "i"]
        assert [entry["name"] for entry in instants] == [
            "fault:strip_option",
            "fallback:fallback",
        ]
        assert instants[1]["ts"] == pytest.approx(0.25 * 1e6)

    def test_exports_are_byte_stable_across_runs(self, traced_run, traced_rerun):
        log_a = traced_run.probe("events").log
        log_b = traced_rerun.probe("events").log
        assert events_jsonl(log_a) == events_jsonl(log_b)
        assert chrome_trace(log_a) == chrome_trace(log_b)


# ----------------------------------------------------------------------
# The instrumented faulted-downgrade cell (acceptance criterion)
# ----------------------------------------------------------------------
class TestFaultedDowngradeTrace:
    def test_strip_is_recorded_before_fallback(self, traced_run):
        events = traced_run.probe("events").log.events
        names = [(event.category, event.name) for event in events]
        strip = names.index(("fault", "strip_option"))
        fallback = next(i for i, pair in enumerate(names) if pair[0] == "fallback")
        assert strip < fallback
        assert events[fallback].detail["reason"] == "mp_capable_stripped"

    def test_trace_covers_the_connection_lifecycle(self, traced_run):
        signature = traced_run.probe("events").log.coverage_signature()
        assert ("connection", "created") in signature
        assert ("connection", "established") in signature
        assert ("scheduler", "select") in signature
        assert ("subflow", "created") in signature

    def test_events_probe_metrics(self, traced_run):
        metrics = traced_run.metrics
        assert metrics["events_recorded"] > 0
        assert metrics["events_dropped"] == 0
        assert metrics["event_counts"]["fault"] == 1
        counters = metrics["event_counters"]
        assert set(counters) >= {"client", "server", "faults"}
        assert counters["client"]["connections_fallen_back"] == 1

    def test_category_filter_param_limits_the_log(self):
        run = run_workload(
            downgrade_spec(event_log=True, event_log_categories="fault,fallback")
        )
        log = run.probe("events").log
        assert set(log.counts_by_category()) <= {"fault", "fallback"}
        assert len(log) >= 2

    def test_limit_param_bounds_the_log(self):
        run = run_workload(downgrade_spec(event_log=True, event_log_limit=5))
        log = run.probe("events").log
        assert len(log) == 5
        assert log.dropped > 0
        assert run.metrics["events_dropped"] == log.dropped


class TestTracingIsZeroCostWhenOff:
    def test_untraced_run_attaches_no_log(self, untraced_run):
        assert untraced_run.sim.event_log is None
        assert untraced_run.probe("events").log is None
        assert not EVENT_METRICS & set(untraced_run.metrics)

    def test_enabling_tracing_does_not_perturb_other_metrics(
        self, traced_run, untraced_run
    ):
        """The no-observer-effect contract: every non-event metric of the
        traced run — including the packet digest — matches the untraced
        run byte for byte."""
        traced = {k: v for k, v in traced_run.metrics.items() if k not in EVENT_METRICS}
        assert traced == untraced_run.metrics


# ----------------------------------------------------------------------
# Stack counters
# ----------------------------------------------------------------------
class TestStackCounters:
    def test_counter_catalogue_and_sanity(self, traced_run):
        counters = traced_run.client.stack.counters()
        assert tuple(counters) == STACK_COUNTER_KEYS
        assert all(isinstance(v, int) and v >= 0 for v in counters.values())
        assert counters["connections_initiated"] == 1
        assert counters["segments_sent"] > 0

    def test_retired_connections_keep_their_socket_totals(self, traced_run):
        """The primary connection closed during the run; its per-socket
        segment totals must survive in the stack counters."""
        conn = traced_run.connection
        assert conn.closed
        counters = traced_run.client.stack.counters()
        sent = sum(flow.socket.segments_sent for flow in conn.subflows)
        assert counters["segments_sent"] >= sent > 0

    def test_counters_are_deterministic(self, traced_run, traced_rerun):
        assert (
            traced_run.client.stack.counters()
            == traced_rerun.client.stack.counters()
        )

    def test_stack_counters_helper_matches_method(self, traced_run):
        stack = traced_run.client.stack
        assert stack_counters(stack) == dict(stack.counters())


# ----------------------------------------------------------------------
# PacketTracer.records aliasing regression
# ----------------------------------------------------------------------
class TestPacketTracerRecords:
    def test_records_returns_a_defensive_copy(self, untraced_run):
        tracer = untraced_run.probe("trace").tracer
        records = tracer.records
        assert records, "expected captured packets on the downgrade cell"
        before = len(records)
        records.clear()
        records.append(None)
        assert len(tracer.records) == before
        assert tracer.records is not tracer.records


# ----------------------------------------------------------------------
# Probe timings / overhead measurement across every registered probe
# ----------------------------------------------------------------------
class TestProbeTimings:
    def test_default_probe_set_covers_the_registry(self):
        assert set(DEFAULT_PROBES) == set(PROBES)

    def test_timings_cover_every_registered_probe(self):
        run = run_workload(
            HarnessSpec(
                horizon=10.0,
                params={"transfer_bytes": 20_000},
                measure_probe_overhead=True,
            )
        )
        assert set(run.probe_timings) == set(PROBES)
        assert all(t >= 0.0 for t in run.probe_timings.values())
        assert run.metrics["probe_overhead_s"] == dict(run.probe_timings)

    def test_timings_cover_multi_connection_cells(self):
        run = run_workload(
            HarnessSpec(
                horizon=10.0,
                connections=3,
                params={"transfer_bytes": 9_000, "connection_stagger": 0.5},
                measure_probe_overhead=True,
            )
        )
        assert set(run.probe_timings) == set(PROBES)
        assert run.metrics["agg_connections"] == 3
        assert "probe_overhead_s" in run.metrics

    def test_overhead_metric_is_opt_in_but_timings_always_exist(self):
        run = run_workload(HarnessSpec(horizon=10.0, params={"transfer_bytes": 20_000}))
        assert "probe_overhead_s" not in run.metrics
        assert set(run.probe_timings) == set(PROBES)


# ----------------------------------------------------------------------
# Campaign telemetry
# ----------------------------------------------------------------------
def telemetry_grid() -> CampaignGrid:
    return CampaignGrid(
        name="obs-telemetry",
        campaign_seed=7,
        experiments=["bulk_transfer"],
        scenarios=["dual_homed"],
        schedulers=["lowest_rtt"],
        controllers=["passive"],
        seeds=2,
        params={"transfer_bytes": 20_000, "horizon": 10.0},
    )


class TestCampaignTelemetry:
    def test_fresh_and_cached_cells_are_distinguished(self, tmp_path):
        grid = telemetry_grid()
        fresh = run_campaign(grid, cache_dir=str(tmp_path))
        for cell in fresh.cells:
            assert isinstance(cell.telemetry, CellTelemetry)
            assert not cell.telemetry.cached
            assert cell.telemetry.wall_time_s > 0.0
            assert cell.telemetry.sim_events > 0
            assert cell.telemetry.events_per_s > 0.0
            assert cell.telemetry.key == cell.spec.key
        cached = run_campaign(grid, cache_dir=str(tmp_path))
        for cell in cached.cells:
            assert cell.telemetry.cached
            assert cell.telemetry.wall_time_s == 0.0
            assert cell.telemetry.sim_events > 0
        assert fresh.to_canonical_json() == cached.to_canonical_json()

    def test_telemetry_stays_out_of_the_canonical_surface(self):
        result = run_campaign(telemetry_grid())
        canonical = result.to_canonical_json()
        assert "wall_time_s" not in canonical
        assert "events_per_s" not in canonical

    def test_progress_callback_receives_telemetry(self):
        seen = []
        result = run_campaign(
            telemetry_grid(),
            progress=lambda spec, res, cached, tel: seen.append((spec.key, cached, tel)),
        )
        assert len(seen) == result.cell_count
        for key, cached, telemetry in seen:
            assert not cached
            assert isinstance(telemetry, CellTelemetry)
            assert telemetry.key == key

    def test_summarize_skips_none_and_splits_cache_states(self):
        fresh = CellTelemetry("a", False, 2.0, 1000, 500.0)
        hit = CellTelemetry("b", True, 0.0, 1000, 0.0)
        summary = summarize_telemetry([fresh, None, hit], top=5)
        assert summary["cells"] == 2
        assert summary["fresh"] == 1 and summary["cached"] == 1
        assert summary["wall_time_s"] == 2.0
        assert summary["sim_events"] == 2000
        assert summary["events_per_s"] == 500.0
        assert [entry["key"] for entry in summary["slowest"]] == ["a"]
        assert summary["events_per_s_distribution"]["p50"] == 500.0

    def test_summarize_orders_slowest_and_honours_top(self):
        cells = [
            CellTelemetry(f"cell-{i}", False, float(i + 1), 100, 10.0)
            for i in range(4)
        ]
        summary = summarize_telemetry(cells, top=2)
        assert [entry["key"] for entry in summary["slowest"]] == ["cell-3", "cell-2"]
        dist = summary["events_per_s_distribution"]
        assert dist["min"] == dist["max"] == 10.0

    def test_empty_summary_formats_without_error(self):
        summary = summarize_telemetry([])
        assert summary["cells"] == 0
        assert summary["events_per_s"] == 0.0
        report = format_telemetry_report(summary)
        assert report.startswith("campaign telemetry")
        assert "slowest" not in report

    def test_report_lists_slowest_cells(self):
        summary = summarize_telemetry([CellTelemetry("k", False, 1.5, 300, 200.0)])
        report = format_telemetry_report(summary)
        assert "slowest fresh cells:" in report
        assert "k" in report


# ----------------------------------------------------------------------
# Runner surface
# ----------------------------------------------------------------------
class TestRunnerCli:
    def subcommands(self):
        import argparse

        parser = build_parser()
        for action in parser._actions:
            if isinstance(action, argparse._SubParsersAction):
                return action.choices
        raise AssertionError("no subparsers registered")

    def test_trace_and_telemetry_subcommands_are_registered(self):
        assert {"trace", "telemetry"} <= set(self.subcommands())

    def test_trace_defaults(self):
        args = self.subcommands()["trace"].parse_args([])
        assert args.format == "chrome"
        assert args.scenario == "dual_homed"
        assert args.out is None

    def test_trace_rejects_unknown_format(self):
        with pytest.raises(SystemExit):
            self.subcommands()["trace"].parse_args(["--format", "pcap"])

    def test_sweep_gained_a_progress_flag(self):
        args = self.subcommands()["sweep"].parse_args(["--grid", "quick"])
        assert args.progress is False
        args = self.subcommands()["sweep"].parse_args(["--grid", "quick", "--progress"])
        assert args.progress is True
