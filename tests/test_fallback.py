"""The plain-TCP fallback path (RFC 6824 §3.6).

Covers both downgrade points — the handshake (MP_CAPABLE stripped in
either direction) and mid-stream DSS corruption on a single-subflow
connection (infinite mapping via MP_FAIL) — plus the demux accounting and
RFC 793 reset-generation fixes that rode along, and the FaultPlan duration
validation.
"""

import errno

import pytest

from repro.apps.bulk import BulkReceiverApp, BulkSenderApp
from repro.faults.inject import FaultInjector, faulted
from repro.faults.plan import FaultEvent, FaultPlan
from repro.mptcp.config import MptcpConfig
from repro.mptcp.options import MpJoinOption
from repro.mptcp.path_manager import FullMeshPathManager
from repro.mptcp.stack import MptcpStack
from repro.net.link import Link
from repro.net.packet import Segment, TCPFlags
from repro.netem.scenarios import (
    build_dual_homed,
    build_mpcapable_stripped,
    build_mpcapable_stripped_synack,
)
from repro.sim.engine import Simulator
from repro.workloads import Harness, HarnessSpec
from tests.helpers import build_dual_homed_rig

PORT = 4000


def stripped_rig(builder, seed=7, config=None, client_pm=None, expected_bytes=None):
    """Client/server stacks over an MP_CAPABLE-stripping topology."""
    sim = Simulator(seed=seed)
    scenario = builder(sim)
    server_apps = []

    def factory():
        app = BulkReceiverApp(expected_bytes=expected_bytes)
        server_apps.append(app)
        return app

    server_stack = MptcpStack(sim, scenario.server, config=config)
    server_stack.listen(PORT, factory)
    client_stack = MptcpStack(sim, scenario.client, config=config, path_manager=client_pm)
    return sim, scenario, client_stack, server_stack, server_apps


def send_bulk(client_stack, scenario, total_bytes=50_000):
    sender = BulkSenderApp(total_bytes)
    conn = client_stack.connect(
        scenario.server_addresses[0], PORT,
        listener=sender, local_address=scenario.client_addresses[0],
    )
    return sender, conn


class TestHandshakeDowngrade:
    def test_symmetric_strip_downgrades_both_ends(self):
        """SYN stripped: the server never sees MP_CAPABLE and serves the
        connection as plain TCP; the bare SYN/ACK downgrades the client."""
        sim, scenario, client, server, apps = stripped_rig(build_mpcapable_stripped)
        sender, conn = send_bulk(client, scenario, 50_000)
        sim.run(until=20.0)
        server_conn = server.fallback_connections[0]
        assert conn.is_fallback and conn.fallback_reason == "mp_capable_stripped"
        assert server_conn.is_fallback
        assert server_conn.remote_key is None  # the key never arrived
        assert sender.completed
        assert apps[0].received_bytes == 50_000
        assert conn.closed and server_conn.closed
        assert client.connections_fallen_back == 1
        assert server.connections_fallen_back == 1

    def test_synack_strip_server_follows_client_down(self):
        """SYN intact, SYN/ACK stripped: the server learnt the client's key
        but must still downgrade when the third ACK arrives bare."""
        sim, scenario, client, server, apps = stripped_rig(build_mpcapable_stripped_synack)
        sender, conn = send_bulk(client, scenario, 50_000)
        sim.run(until=20.0)
        server_conn = server.fallback_connections[0]
        assert conn.is_fallback and server_conn.is_fallback
        assert server_conn.remote_key is not None  # SYN direction was honest
        assert sender.completed
        assert apps[0].received_bytes == 50_000
        assert conn.closed and server_conn.closed

    def test_fallback_bypasses_path_manager(self):
        """A full-mesh client over the stripper opens exactly one subflow:
        the path manager is never told about the fallen-back connection."""
        sim, scenario, client, server, apps = stripped_rig(
            build_mpcapable_stripped, client_pm=FullMeshPathManager()
        )
        sender, conn = send_bulk(client, scenario, 50_000)
        sim.run(until=20.0)
        assert conn.is_fallback
        assert conn.subflows_created == 1
        assert sender.completed

    def test_fallback_refuses_mp_join(self):
        sim, scenario, client, server, apps = stripped_rig(build_mpcapable_stripped)
        # Big enough that the connection is still open when the join lands.
        sender, conn = send_bulk(client, scenario, 5_000_000)
        sim.run(until=1.0)
        server_conn = server.fallback_connections[0]
        assert server_conn.is_fallback and not server_conn.closed
        unmatched_before = server.segments_unmatched
        resets_before = server.resets_sent
        join = Segment(
            src=scenario.client_addresses[1], dst=scenario.server_addresses[1],
            sport=9999, dport=PORT, seq=0, flags=TCPFlags.SYN,
            options=(MpJoinOption(token=server_conn.local_token),),
        )
        server.on_segment(join, None)
        assert len(server_conn.subflows) == 1
        assert server.segments_unmatched == unmatched_before + 1
        assert server.resets_sent == resets_before + 1

    def test_allow_fallback_false_keeps_reset_behaviour(self):
        config = MptcpConfig(allow_fallback=False)
        sim, scenario, client, server, apps = stripped_rig(
            build_mpcapable_stripped, config=config
        )
        sender, conn = send_bulk(client, scenario, 50_000)
        sim.run(until=20.0)
        assert not conn.established
        assert server.connections_accepted == 0
        assert server.resets_sent >= 1
        assert server.segments_unmatched >= 1

    def test_clean_dual_homed_never_falls_back(self):
        rig = build_dual_homed_rig(client_pm=FullMeshPathManager())
        sender, conn = rig.connect_bulk(50_000)
        rig.sim.run(until=20.0)
        assert not conn.is_fallback
        assert rig.client_stack.connections_fallen_back == 0
        assert rig.server_stack.connections_fallen_back == 0
        assert sender.completed


def corrupt_plan(start=0.1, duration=14.0, target="path0"):
    return FaultPlan(seed=0, profile="test", horizon=15.0, events=(
        FaultEvent(start, target, "corrupt_dss", (("duration", duration),)),
    ))


class TestInfiniteMappingFallback:
    def run_cell(self, scenario, controller="passive", transfer=400_000):
        return Harness().run(HarnessSpec(
            workload="bulk_transfer", scenario=scenario, controller=controller,
            seed=3, horizon=15.0, params={"transfer_bytes": transfer},
        ))

    def test_single_subflow_corruption_degrades_to_fallback(self):
        run = self.run_cell(faulted(build_dual_homed, "dual_homed", plan=corrupt_plan()))
        conn = run.connection
        assert conn.is_fallback and conn.fallback_reason == "dss_checksum_fail"
        assert run.metrics["fault_dss_corrupted"] > 0
        # Byte-exact delivery through the downgrade, then a clean close.
        assert run.metrics["bytes_delivered"] == 400_000
        assert run.server_apps[0].received_bytes == 400_000
        assert conn.closed
        assert run.metrics["fallback_connections"] == 1
        assert run.metrics["fallback_bytes"] > 0

    def test_multi_subflow_corruption_keeps_existing_recovery(self):
        """With a second subflow available the connection must not fall
        back: the meta retransmission timer repairs the stream on the
        healthy path, as before the fallback path existed."""
        run = self.run_cell(
            faulted(build_dual_homed, "dual_homed", plan=corrupt_plan()),
            controller="fullmesh",
        )
        assert not run.connection.is_fallback
        assert run.metrics["fallback_connections"] == 0
        # Meta-timer reinjection limps through the window on the healthy
        # path: partial delivery, byte-identical to the pre-fallback stack
        # (the seed state delivers exactly the same 173600 bytes here).
        assert run.metrics["bytes_delivered"] == 173_600

    def test_clean_cells_carry_no_fallback_metrics(self):
        run = self.run_cell("dual_homed")
        assert "fallback_connections" not in run.metrics
        assert "fallback_bytes" not in run.metrics

    def test_fallback_disabled_keeps_the_old_stall(self):
        """With ``allow_fallback=False`` the mapping-less data stays
        ignored and the transfer stalls inside the corruption window — the
        pre-fallback behaviour, kept reachable for comparison."""
        sim = Simulator(seed=3)
        scenario = faulted(build_dual_homed, "dual_homed", plan=corrupt_plan())(sim)
        config = MptcpConfig(allow_fallback=False)
        apps = []

        def factory():
            app = BulkReceiverApp()
            apps.append(app)
            return app

        server = MptcpStack(sim, scenario.server, config=config)
        server.listen(PORT, factory)
        client = MptcpStack(sim, scenario.client, config=config)
        sender = BulkSenderApp(400_000)
        conn = client.connect(
            scenario.server_addresses[0], PORT,
            listener=sender, local_address=scenario.client_addresses[0],
        )
        sim.run(until=15.0)
        assert not conn.is_fallback
        assert not sender.completed
        assert apps[0].received_bytes < 400_000

    def test_longlived_bidirectional_fallback(self):
        run = Harness().run(HarnessSpec(
            workload="longlived",
            scenario=faulted(build_dual_homed, "dual_homed",
                             plan=corrupt_plan(start=0.05, duration=14.5)),
            controller="passive", seed=4, horizon=15.0,
            params={"message_interval": 1.0},
        ))
        metrics = run.metrics
        assert metrics["messages_sent"] > 0
        assert metrics["messages_delivered"] == metrics["messages_sent"]


class TestDemuxAccounting:
    """Every RST-producing demux branch counts segments_unmatched."""

    def test_dead_join_token_counts(self):
        rig = build_dual_homed_rig()
        syn = Segment(
            src=rig.client_addresses[0], dst=rig.server_addresses[0],
            sport=7777, dport=4000, seq=0, flags=TCPFlags.SYN,
            options=(MpJoinOption(token=0xDEAD),),
        )
        rig.server_stack.on_segment(syn, None)
        assert rig.server_stack.segments_unmatched == 1
        assert rig.server_stack.resets_sent == 1

    def test_unlistened_port_counts(self):
        rig = build_dual_homed_rig()
        syn = Segment(
            src=rig.client_addresses[0], dst=rig.server_addresses[0],
            sport=7777, dport=9,  # nothing listens on 9
            seq=0, flags=TCPFlags.SYN,
        )
        rig.server_stack.on_segment(syn, None)
        assert rig.server_stack.segments_unmatched == 1
        assert rig.server_stack.resets_sent == 1

    def test_plain_syn_with_fallback_disabled_counts(self):
        rig = build_dual_homed_rig(config=MptcpConfig(allow_fallback=False))
        syn = Segment(
            src=rig.client_addresses[0], dst=rig.server_addresses[0],
            sport=7777, dport=4000, seq=0, flags=TCPFlags.SYN,
        )
        rig.server_stack.on_segment(syn, None)
        assert rig.server_stack.segments_unmatched == 1
        assert rig.server_stack.resets_sent == 1
        assert rig.server_stack.connections_accepted == 0

    def test_stray_non_syn_counts(self):
        rig = build_dual_homed_rig()
        stray = Segment(
            src=rig.client_addresses[0], dst=rig.server_addresses[0],
            sport=7777, dport=4000, seq=55, ack=77, flags=TCPFlags.ACK,
        )
        rig.server_stack.on_segment(stray, None)
        assert rig.server_stack.segments_unmatched == 1
        assert rig.server_stack.resets_sent == 1


class TestResetGeneration:
    """RFC 793 reset fields and the RST-storm guard."""

    def captured_reset(self, rig, segment):
        sent = []
        rig.scenario.server.send = lambda seg: sent.append(seg)
        rig.server_stack.on_segment(segment, None)
        assert len(sent) == 1
        return sent[0]

    def test_bare_syn_reset_uses_seq_zero_and_acks_the_syn(self):
        rig = build_dual_homed_rig()
        syn = Segment(
            src=rig.client_addresses[0], dst=rig.server_addresses[0],
            sport=7777, dport=9, seq=100, ack=0, flags=TCPFlags.SYN,
        )
        reset = self.captured_reset(rig, syn)
        assert reset.is_rst and reset.is_ack
        assert reset.seq == 0
        assert reset.ack == 101  # SYN consumes one sequence number

    def test_ack_segment_reset_uses_the_acknowledged_sequence(self):
        rig = build_dual_homed_rig()
        stray = Segment(
            src=rig.client_addresses[0], dst=rig.server_addresses[0],
            sport=7777, dport=9, seq=55, ack=7777, flags=TCPFlags.ACK,
        )
        reset = self.captured_reset(rig, stray)
        assert reset.is_rst and not reset.is_ack
        assert reset.seq == 7777
        assert reset.ack == 0

    def test_no_rst_storm_between_two_stacks(self):
        """A reset answering an unmatched segment must not itself be
        answered: the is_rst guard breaks the loop on the first bounce."""
        rig = build_dual_homed_rig()
        stray = Segment(
            src=rig.client_addresses[0], dst=rig.server_addresses[0],
            sport=7777, dport=4000, seq=1, ack=2, flags=TCPFlags.ACK,
        )
        rig.scenario.client.send(stray)
        rig.sim.run(until=5.0)
        assert rig.server_stack.resets_sent == 1
        assert rig.client_stack.segments_unmatched == 1  # the returning RST
        assert rig.client_stack.resets_sent == 0


class TestPlanDurationValidation:
    def test_link_flap_without_duration_is_rejected(self):
        plan = FaultPlan(seed=0, profile="test", horizon=10.0, events=(
            FaultEvent(1.0, "wire", "link_flap"),
        ))
        with pytest.raises(ValueError, match="positive duration"):
            plan.validate(["wire"])

    def test_window_event_with_zero_duration_is_rejected(self):
        plan = FaultPlan(seed=0, profile="test", horizon=10.0, events=(
            FaultEvent(1.0, "wire", "corrupt_dss", (("duration", 0.0),)),
        ))
        with pytest.raises(ValueError, match="positive duration"):
            plan.validate(["wire"])

    def test_instant_events_need_no_duration(self):
        plan = FaultPlan(seed=0, profile="test", horizon=10.0, events=(
            FaultEvent(1.0, "wire", "nat_rebind"),
            FaultEvent(2.0, "wire", "burst_loss", (("count", 3),)),
        ))
        plan.validate(["wire"])  # must not raise

    def test_injector_rejects_malformed_plan_at_construction(self, sim):
        link = Link(sim, name="wire", delay=0.001)
        plan = FaultPlan(seed=0, profile="test", horizon=10.0, events=(
            FaultEvent(1.0, "wire", "link_flap"),
        ))
        with pytest.raises(ValueError, match="positive duration"):
            FaultInjector(sim, {"wire": link}, plan)

    def test_named_plans_all_validate(self):
        from repro.faults.plans import NAMED_PLANS, named_plan

        for name in NAMED_PLANS:
            named_plan(name).validate(["path0", "path1"])
