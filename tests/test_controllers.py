"""End-to-end tests of the SMAPP architecture and the four smart controllers.

Every test drives a controller purely through the Netlink channel (via
:class:`repro.core.manager.SmappManager`), exactly as the paper's userspace
programs would run.
"""

import errno

import pytest

from tests.helpers import RecordingApp, SERVER_PORT
from repro.apps.bulk import BulkReceiverApp, BulkSenderApp
from repro.apps.streaming import StreamingSinkApp, StreamingSourceApp
from repro.core.commands import ReplyStatus
from repro.core.controller import ControllerState, SubflowController
from repro.core.controllers import (
    RefreshController,
    SmartBackupController,
    SmartStreamingController,
    UserspaceFullMeshController,
    UserspaceNdiffportsController,
)
from repro.core.events import ConnCreatedEvent, SubflowClosedEvent, TimeoutEvent
from repro.core.manager import SmappManager
from repro.mptcp.stack import MptcpStack
from repro.net.addressing import FourTuple, ip
from repro.netem.scenarios import build_dual_homed, build_natted
from repro.sim.engine import Simulator


def build_smapp_rig(seed=11, rate_mbps=10.0, delay_ms=5.0, loss=(0.0, 0.0), expected=None):
    """Dual-homed rig whose client runs the full SMAPP stack."""
    sim = Simulator(seed=seed)
    scenario = build_dual_homed(sim, rate_mbps=rate_mbps, delay_ms=delay_ms, loss_percent=loss)
    server_apps = []

    def factory():
        app = BulkReceiverApp(expected_bytes=expected)
        server_apps.append(app)
        return app

    server_stack = MptcpStack(sim, scenario.server)
    server_stack.listen(SERVER_PORT, factory)
    manager = SmappManager(sim, scenario.client)
    return sim, scenario, manager, server_stack, server_apps


class TestControllerState:
    def test_views_follow_events(self):
        state = ControllerState()
        tup = FourTuple(ip("10.0.0.1"), 1000, ip("10.0.0.2"), 80)
        state.update(ConnCreatedEvent(0.1, 7, tup, 1, True))
        state.update(TimeoutEvent(0.5, 7, 1, 0.4, 2))
        view = state.connection(7)
        assert view.four_tuple == tup
        assert view.subflow(1).timeout_count == 1
        state.update(SubflowClosedEvent(0.6, 7, 1, tup, errno.ETIMEDOUT))
        assert view.subflow(1).closed
        assert view.subflow(1).close_reason == errno.ETIMEDOUT
        assert view.active_subflows == []

    def test_prime_local_addresses(self):
        state = ControllerState()
        state.prime_local_addresses([("if0", ip("10.0.0.1")), ("if1", ip("10.1.0.1"))])
        assert set(state.local_addresses) == {"if0", "if1"}


class TestSmappPlumbing:
    def test_controller_sees_connection_lifecycle_events(self):
        sim, scenario, manager, server_stack, server_apps = build_smapp_rig(expected=50_000)
        controller = manager.attach_controller(SubflowController)
        sender = BulkSenderApp(50_000)
        manager.stack.connect(scenario.server_addresses[0], SERVER_PORT, listener=sender,
                              local_address=scenario.client_addresses[0])
        sim.run(until=10.0)
        assert sender.completed
        assert controller.events_seen >= 4  # created, estab, sub_estab, ... closed
        assert all(view.closed for view in controller.state.connections.values())

    def test_commands_report_errors_for_unknown_connection(self):
        sim, scenario, manager, *_ = build_smapp_rig()
        replies = []
        manager.library.get_conn_info(0xDEAD, replies.append)
        sim.run(until=0.1)
        assert replies and replies[0].status == ReplyStatus.UNKNOWN_CONNECTION

    def test_get_subflow_info_via_netlink(self):
        sim, scenario, manager, server_stack, _ = build_smapp_rig(expected=100_000)
        sender = BulkSenderApp(100_000, close_when_done=False)
        conn = manager.stack.connect(scenario.server_addresses[0], SERVER_PORT, listener=sender,
                                     local_address=scenario.client_addresses[0])
        sim.run(until=2.0)
        replies = []
        manager.library.get_subflow_info(conn.local_token, conn.initial_subflow.id, replies.append)
        sim.run(until=2.1)
        assert replies and replies[0].ok
        payload = replies[0].payload
        assert payload["state"] == "ESTABLISHED"
        assert payload["pacing_rate"] > 0
        assert payload["bytes_acked"] == 100_000

    def test_create_and_remove_subflow_via_netlink(self):
        sim, scenario, manager, server_stack, _ = build_smapp_rig()
        app = RecordingApp()
        conn = manager.stack.connect(scenario.server_addresses[0], SERVER_PORT, listener=app,
                                     local_address=scenario.client_addresses[0])
        sim.run(until=1.0)
        replies = []
        manager.library.create_subflow(
            conn.local_token, scenario.client_addresses[1],
            remote_address=scenario.server_addresses[1], remote_port=SERVER_PORT,
            on_reply=replies.append,
        )
        sim.run(until=2.0)
        assert replies[0].ok
        new_id = replies[0].payload["subflow_id"]
        assert conn.subflow_by_id(new_id).is_established
        manager.library.remove_subflow(conn.local_token, new_id, on_reply=replies.append)
        sim.run(until=3.0)
        assert replies[1].ok
        assert conn.subflow_by_id(new_id).is_closed


class TestUserspaceNdiffports:
    def test_opens_requested_subflows(self):
        sim, scenario, manager, server_stack, _ = build_smapp_rig(expected=200_000)
        controller = manager.attach_controller(UserspaceNdiffportsController, subflow_count=3)
        sender = BulkSenderApp(200_000, close_when_done=False)
        conn = manager.stack.connect(scenario.server_addresses[0], SERVER_PORT, listener=sender,
                                     local_address=scenario.client_addresses[0])
        sim.run(until=5.0)
        assert controller.subflows_requested == 2
        assert len(conn.active_subflows) == 3
        ports = {flow.socket.local_port for flow in conn.active_subflows}
        assert len(ports) == 3

    def test_validation(self):
        sim, scenario, manager, *_ = build_smapp_rig()
        with pytest.raises(ValueError):
            manager.attach_controller(UserspaceNdiffportsController, subflow_count=0)


class TestSmartBackupController:
    def test_switches_to_backup_on_rto_threshold(self):
        sim, scenario, manager, server_stack, _ = build_smapp_rig(rate_mbps=2.0, expected=None)
        controller = manager.attach_controller(
            SmartBackupController,
            backup_local_address=scenario.client_addresses[1],
            backup_remote_address=scenario.server_addresses[1],
            backup_remote_port=SERVER_PORT,
            rto_threshold=1.0,
        )
        sender = BulkSenderApp(5_000_000, close_when_done=False)
        conn = manager.stack.connect(scenario.server_addresses[0], SERVER_PORT, listener=sender,
                                     local_address=scenario.client_addresses[0])
        sim.schedule(1.0, scenario.path_links[0].set_loss_rate, 0.30)
        sim.run(until=8.0)
        assert controller.switches == 1
        assert conn.initial_subflow.is_closed
        backup_flows = [f for f in conn.subflows if f.socket.local_address == scenario.client_addresses[1]]
        assert backup_flows and backup_flows[0].bytes_scheduled > 0
        # Data keeps flowing after the switch.
        assert conn.data_una > conn.initial_subflow.bytes_scheduled // 2

    def test_no_switch_without_trouble(self):
        sim, scenario, manager, server_stack, _ = build_smapp_rig(expected=500_000)
        controller = manager.attach_controller(
            SmartBackupController,
            backup_local_address=scenario.client_addresses[1],
            rto_threshold=1.0,
        )
        sender = BulkSenderApp(500_000)
        manager.stack.connect(scenario.server_addresses[0], SERVER_PORT, listener=sender,
                              local_address=scenario.client_addresses[0])
        sim.run(until=10.0)
        assert controller.switches == 0
        assert sender.completed


class TestSmartStreamingController:
    def test_opens_second_path_under_loss(self):
        sim = Simulator(seed=21)
        scenario = build_dual_homed(sim, rate_mbps=5.0, delay_ms=10.0, loss_percent=(30.0, 0.0))
        sinks = []
        server_stack = MptcpStack(sim, scenario.server)
        server_stack.listen(SERVER_PORT, lambda: sinks.append(StreamingSinkApp()) or sinks[-1])
        manager = SmappManager(sim, scenario.client)
        controller = manager.attach_controller(
            SmartStreamingController,
            secondary_local_address=scenario.client_addresses[1],
            secondary_remote_address=scenario.server_addresses[1],
            secondary_remote_port=SERVER_PORT,
        )
        source = StreamingSourceApp(block_count=15)
        conn = manager.stack.connect(scenario.server_addresses[0], SERVER_PORT, listener=source,
                                     local_address=scenario.client_addresses[0])
        sim.run(until=40.0)
        assert len(conn.subflows) >= 2
        assert controller.progress_checks > 0
        delays = sinks[0].completion_times()
        assert len(delays) == 15
        assert sum(1 for d in delays if d > 1.0) <= 2

    def test_quiet_path_keeps_single_subflow(self):
        sim = Simulator(seed=22)
        scenario = build_dual_homed(sim, rate_mbps=5.0, delay_ms=10.0)
        sinks = []
        server_stack = MptcpStack(sim, scenario.server)
        server_stack.listen(SERVER_PORT, lambda: sinks.append(StreamingSinkApp()) or sinks[-1])
        manager = SmappManager(sim, scenario.client)
        controller = manager.attach_controller(
            SmartStreamingController,
            secondary_local_address=scenario.client_addresses[1],
        )
        source = StreamingSourceApp(block_count=10)
        conn = manager.stack.connect(scenario.server_addresses[0], SERVER_PORT, listener=source,
                                     local_address=scenario.client_addresses[0])
        sim.run(until=30.0)
        assert controller.slow_blocks_detected == 0
        assert len(conn.subflows) == 1


class TestUserspaceFullMeshController:
    def test_builds_full_mesh(self):
        sim, scenario, manager, server_stack, _ = build_smapp_rig()
        controller = manager.attach_controller(UserspaceFullMeshController)
        app = RecordingApp()
        conn = manager.stack.connect(scenario.server_addresses[0], SERVER_PORT, listener=app,
                                     local_address=scenario.client_addresses[0])
        sim.run(until=3.0)
        assert len(conn.active_subflows) == 4

    def test_reestablishes_after_rst(self):
        sim = Simulator(seed=31)
        scenario = build_natted(sim, nat_idle_timeout=20.0, nat_sends_rst=True)
        from repro.apps.longlived import LongLivedApp, LongLivedPeer

        peers = []
        server_stack = MptcpStack(sim, scenario.server)
        server_stack.listen(SERVER_PORT, lambda: peers.append(LongLivedPeer()) or peers[-1])
        manager = SmappManager(sim, scenario.client)
        controller = manager.attach_controller(UserspaceFullMeshController)
        app = LongLivedApp(message_bytes=300, message_interval=60.0)
        manager.stack.connect(scenario.server_addresses[0], SERVER_PORT, listener=app,
                              local_address=scenario.client_addresses[0])
        sim.run(until=200.0)
        # Messages every 60 s with a 20 s NAT timeout: the NAT-side subflow
        # keeps dying and the controller keeps repairing it.
        assert controller.reestablishments >= 1
        assert app.delivered_messages == len(app.messages)
        assert app.delivered_messages >= 3


class TestRefreshController:
    def test_replaces_slowest_subflow(self):
        from repro.netem.scenarios import build_ecmp

        sim = Simulator(seed=41)
        scenario = build_ecmp(sim)
        receivers = []
        server_stack = MptcpStack(sim, scenario.server)
        server_stack.listen(SERVER_PORT, lambda: receivers.append(BulkReceiverApp()) or receivers[-1])
        manager = SmappManager(sim, scenario.client)
        controller = manager.attach_controller(RefreshController, subflow_count=5, refresh_interval=2.5)
        sender = BulkSenderApp(4_000_000, close_when_done=False)
        conn = manager.stack.connect(scenario.server_address, SERVER_PORT, listener=sender)
        sim.run(until=12.0)
        assert len(conn.subflows) >= 5
        assert controller.refresh_rounds >= 2
        assert sender.completed

    def test_validation(self):
        sim, scenario, manager, *_ = build_smapp_rig()
        with pytest.raises(ValueError):
            manager.attach_controller(RefreshController, subflow_count=1)
