"""Tests for the expanded netem scenario library."""

import pytest

from repro.apps.bulk import BulkReceiverApp, BulkSenderApp
from repro.mptcp.config import MptcpConfig
from repro.mptcp.path_manager import FullMeshPathManager
from repro.mptcp.stack import MptcpStack
from repro.net.middlebox import OptionStrippingMiddlebox
from repro.netem.scenarios import (
    build_addaddr_stripped,
    build_asymmetric_loss,
    build_bufferbloat_cellular,
    build_path_failure_recovery,
    build_wifi_lte_handover,
)
from repro.sim.engine import Simulator

PORT = 9100


def _transfer(sim, scenario, total_bytes=60_000, horizon=15.0, fullmesh=True):
    """Run a client→server bulk transfer over the scenario's primary path."""
    receivers = []

    def factory():
        receivers.append(BulkReceiverApp(expected_bytes=total_bytes))
        return receivers[-1]

    MptcpStack(sim, scenario.server, config=MptcpConfig()).listen(PORT, factory)
    client_stack = MptcpStack(
        sim,
        scenario.client,
        config=MptcpConfig(),
        path_manager=FullMeshPathManager() if fullmesh else None,
    )
    sender = BulkSenderApp(total_bytes, close_when_done=True)
    conn = client_stack.connect(
        scenario.server_addresses[0], PORT, listener=sender,
        local_address=scenario.client_addresses[0],
    )
    sim.run(until=horizon)
    return sender, receivers, conn


class TestWifiLteHandover:
    def test_wifi_interface_goes_down_on_schedule(self):
        sim = Simulator(seed=1)
        scenario = build_wifi_lte_handover(sim, degrade_at=0.5, down_at=1.0)
        assert scenario.client.interface("if0").is_up
        sim.run(until=0.7)
        assert scenario.path_links[0].loss_rate > 0
        sim.run(until=1.2)
        assert not scenario.client.interface("if0").is_up

    def test_recovery_brings_wifi_back_clean(self):
        sim = Simulator(seed=1)
        scenario = build_wifi_lte_handover(sim, degrade_at=0.5, down_at=1.0, recover_at=2.0)
        sim.run(until=3.0)
        assert scenario.client.interface("if0").is_up
        assert scenario.path_links[0].loss_rate == 0.0

    def test_recover_before_down_rejected(self):
        with pytest.raises(ValueError):
            build_wifi_lte_handover(Simulator(seed=1), down_at=2.0, recover_at=1.0)
        # Also rejected when only the degradation precedes it …
        with pytest.raises(ValueError):
            build_wifi_lte_handover(Simulator(seed=1), degrade_at=1.0, down_at=None, recover_at=0.5)
        # … and for negative times, with the builder's own error rather
        # than a SimulationError from the scheduling layer.
        with pytest.raises(ValueError):
            build_wifi_lte_handover(Simulator(seed=1), degrade_at=-1.0)

    def test_transfer_survives_handover(self):
        sim = Simulator(seed=3)
        scenario = build_wifi_lte_handover(sim, degrade_at=0.2, down_at=0.5)
        sender, receivers, conn = _transfer(sim, scenario, total_bytes=400_000, horizon=20.0)
        assert sender.completion_time is not None
        # Data must have moved onto the LTE path after the WiFi loss.
        lte_flows = [f for f in conn.subflows if f.four_tuple.src == scenario.client_addresses[1]]
        assert any(f.bytes_scheduled > 0 for f in lte_flows)


class TestAsymmetricLoss:
    def test_per_path_loss_rates(self):
        scenario = build_asymmetric_loss(Simulator(seed=1), loss_percents=(7.5, 0.25))
        assert scenario.path_links[0].loss_rate == pytest.approx(0.075)
        assert scenario.path_links[1].loss_rate == pytest.approx(0.0025)

    def test_transfer_completes_despite_loss(self):
        sim = Simulator(seed=2)
        scenario = build_asymmetric_loss(sim)
        sender, receivers, _ = _transfer(sim, scenario, total_bytes=100_000, horizon=20.0)
        assert sender.completion_time is not None
        assert receivers and receivers[0].received_bytes == 100_000


class TestBufferbloatCellular:
    def test_cellular_path_queues_instead_of_dropping(self):
        sim = Simulator(seed=4)
        scenario = build_bufferbloat_cellular(sim)
        sender, _, _ = _transfer(sim, scenario, total_bytes=150_000, horizon=20.0)
        assert sender.completion_time is not None
        cell_stats = scenario.path_links[1].stats()
        assert scenario.path_links[1].loss_rate == 0.0
        assert cell_stats["dropped_loss"] == 0
        # The bloated buffer absorbs the whole burst rather than tail-dropping.
        assert cell_stats["dropped_queue"] == 0


class TestPathFailureRecovery:
    def test_blackout_window(self):
        sim = Simulator(seed=1)
        scenario = build_path_failure_recovery(sim, fail_at=1.0, recover_at=2.0)
        assert scenario.path_links[0].loss_rate == 0.0
        sim.run(until=1.5)
        assert scenario.path_links[0].loss_rate == 1.0
        sim.run(until=2.5)
        assert scenario.path_links[0].loss_rate == 0.0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            build_path_failure_recovery(Simulator(seed=1), fail_at=2.0, recover_at=1.0)

    def test_transfer_straddling_blackout_completes(self):
        sim = Simulator(seed=5)
        scenario = build_path_failure_recovery(sim, fail_at=0.1, recover_at=1.1)
        sender, _, _ = _transfer(sim, scenario, total_bytes=600_000, horizon=25.0)
        assert sender.completion_time is not None
        assert sender.completion_time > 0.1


class TestAddAddrStripping:
    def test_middlebox_strips_add_addr_only(self):
        sim = Simulator(seed=6)
        scenario = build_addaddr_stripped(sim)
        assert isinstance(scenario.stripper, OptionStrippingMiddlebox)
        sender, receivers, conn = _transfer(sim, scenario, total_bytes=60_000, horizon=15.0)
        # The transfer itself works: only the advertisement is damaged.
        assert sender.completion_time is not None
        assert scenario.stripper.options_stripped > 0
        assert scenario.stripper.forwarded > 0

    def test_stripping_limits_the_mesh(self):
        """With ADD_ADDR stripped the client never learns the server's
        second address, so fullmesh builds strictly fewer subflows than on
        an equivalent clean topology."""
        sim = Simulator(seed=7)
        scenario = build_addaddr_stripped(sim)
        _, _, conn = _transfer(sim, scenario, total_bytes=60_000, horizon=15.0)
        stripped_subflows = len(conn.subflows)

        from repro.netem.scenarios import build_dual_homed

        sim2 = Simulator(seed=7)
        clean = build_dual_homed(sim2)
        _, _, conn2 = _transfer(sim2, clean, total_bytes=60_000, horizon=15.0)
        assert stripped_subflows < len(conn2.subflows)
